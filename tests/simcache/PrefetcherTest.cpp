//===- tests/simcache/PrefetcherTest.cpp ---------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "simcache/Prefetcher.h"

#include "support/Random.h"

#include "TestSeeds.h"

#include <gtest/gtest.h>

using namespace hcsgc;

TEST(PrefetcherTest, AscendingStreamLocksAndPrefetchesAhead) {
  StreamPrefetcher P(8, 4);
  std::vector<uint64_t> T;
  for (uint64_t L = 100; L < 110; ++L) {
    T.clear();
    P.observe(L, T);
  }
  // Locked stream: prefetches the next 4 lines ahead of the last access.
  ASSERT_EQ(T.size(), 4u);
  EXPECT_EQ(T[0], 110u);
  EXPECT_EQ(T[3], 113u);
}

TEST(PrefetcherTest, DescendingStreamSupported) {
  StreamPrefetcher P(8, 2);
  std::vector<uint64_t> T;
  for (uint64_t L = 500; L > 490; --L) {
    T.clear();
    P.observe(L, T);
  }
  ASSERT_EQ(T.size(), 2u);
  EXPECT_EQ(T[0], 490u);
  EXPECT_EQ(T[1], 489u);
}

TEST(PrefetcherTest, RandomAccessesDontPrefetch) {
  StreamPrefetcher P(8, 4);
  SplitMix64 Rng(test::testSeed(30));
  std::vector<uint64_t> T;
  size_t Prefetches = 0;
  for (int I = 0; I < 1000; ++I) {
    T.clear();
    P.observe(Rng.nextBelow(1 << 30), T);
    Prefetches += T.size();
  }
  // A sparse random stream over 2^30 lines should almost never look like
  // a stride-1 stream.
  EXPECT_LT(Prefetches, 50u);
}

TEST(PrefetcherTest, ToleratesSmallJitter) {
  // Two 32-byte objects per 64-byte line: access order can repeat or
  // skip a line; the stream should survive +2 jumps.
  StreamPrefetcher P(8, 2);
  std::vector<uint64_t> T;
  uint64_t Lines[] = {10, 11, 13, 14, 16, 17};
  size_t Prefetches = 0;
  for (uint64_t L : Lines) {
    T.clear();
    P.observe(L, T);
    Prefetches += T.size();
  }
  EXPECT_GT(Prefetches, 0u);
}

TEST(PrefetcherTest, TracksMultipleStreams) {
  StreamPrefetcher P(8, 2);
  std::vector<uint64_t> T;
  size_t Prefetches = 0;
  // Interleave two ascending streams far apart.
  for (int I = 0; I < 10; ++I) {
    T.clear();
    P.observe(1000 + I, T);
    Prefetches += T.size();
    T.clear();
    P.observe(90000 + I, T);
    Prefetches += T.size();
  }
  EXPECT_GT(Prefetches, 20u);
}

TEST(PrefetcherTest, ResetForgetsStreams) {
  StreamPrefetcher P(4, 2);
  std::vector<uint64_t> T;
  for (uint64_t L = 0; L < 6; ++L) {
    T.clear();
    P.observe(L, T);
  }
  EXPECT_FALSE(T.empty());
  P.reset();
  T.clear();
  P.observe(6, T);
  EXPECT_TRUE(T.empty()); // needs retraining
}
