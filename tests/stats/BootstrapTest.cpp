//===- tests/stats/BootstrapTest.cpp -----------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "stats/Bootstrap.h"

#include "support/Random.h"

#include "TestSeeds.h"

#include <gtest/gtest.h>

using namespace hcsgc;

TEST(BootstrapTest, MeanEstimateNearSampleMean) {
  std::vector<double> S{10, 12, 11, 13, 9, 10, 12, 11};
  BootstrapResult R = bootstrapMean(S);
  EXPECT_NEAR(R.MeanEstimate, 11.0, 0.2);
  EXPECT_LE(R.CiLow, R.MeanEstimate);
  EXPECT_GE(R.CiHigh, R.MeanEstimate);
}

TEST(BootstrapTest, CiContainsTrueMeanUsually) {
  // Sample from a known distribution; the 95% CI should contain the true
  // mean in the vast majority of trials.
  SplitMix64 Rng(test::testSeed(10));
  int Contained = 0;
  constexpr int Trials = 60;
  for (int T = 0; T < Trials; ++T) {
    std::vector<double> S;
    for (int I = 0; I < 30; ++I)
      S.push_back(50.0 + static_cast<double>(Rng.nextBelow(21)) - 10.0);
    BootstrapResult R = bootstrapMean(S, 2000, Rng.next());
    if (R.CiLow <= 50.0 && 50.0 <= R.CiHigh)
      ++Contained;
  }
  EXPECT_GE(Contained, Trials * 8 / 10);
}

TEST(BootstrapTest, TighterCiWithLowerVariance) {
  std::vector<double> Tight, Wide;
  SplitMix64 Rng(test::testSeed(11));
  for (int I = 0; I < 30; ++I) {
    Tight.push_back(100.0 + static_cast<double>(Rng.nextBelow(3)));
    Wide.push_back(100.0 + static_cast<double>(Rng.nextBelow(60)));
  }
  BootstrapResult T = bootstrapMean(Tight);
  BootstrapResult W = bootstrapMean(Wide);
  EXPECT_LT(T.CiHigh - T.CiLow, W.CiHigh - W.CiLow);
}

TEST(BootstrapTest, SignificanceByNonOverlap) {
  BootstrapResult A, B, C;
  A.CiLow = 1.0;
  A.CiHigh = 2.0;
  B.CiLow = 2.5;
  B.CiHigh = 3.0;
  C.CiLow = 1.5;
  C.CiHigh = 2.6;
  EXPECT_TRUE(significantlyDifferent(A, B));
  EXPECT_TRUE(significantlyDifferent(B, A));
  EXPECT_FALSE(significantlyDifferent(A, C));
  EXPECT_FALSE(significantlyDifferent(B, C));
}

TEST(BootstrapTest, DeterministicForSeed) {
  std::vector<double> S{1, 2, 3, 4, 5, 6};
  BootstrapResult A = bootstrapMean(S, 1000, 7);
  BootstrapResult B = bootstrapMean(S, 1000, 7);
  EXPECT_DOUBLE_EQ(A.MeanEstimate, B.MeanEstimate);
  EXPECT_DOUBLE_EQ(A.CiLow, B.CiLow);
  EXPECT_DOUBLE_EQ(A.CiHigh, B.CiHigh);
}

TEST(BootstrapTest, DegenerateSamples) {
  BootstrapResult Empty = bootstrapMean({});
  EXPECT_DOUBLE_EQ(Empty.MeanEstimate, 0.0);
  BootstrapResult One = bootstrapMean({4.0});
  EXPECT_DOUBLE_EQ(One.MeanEstimate, 4.0);
  EXPECT_DOUBLE_EQ(One.CiLow, 4.0);
  EXPECT_DOUBLE_EQ(One.CiHigh, 4.0);
  // Constant sample: zero-width CI.
  BootstrapResult Const = bootstrapMean({2.0, 2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(Const.MeanEstimate, 2.0);
  EXPECT_DOUBLE_EQ(Const.CiLow, 2.0);
  EXPECT_DOUBLE_EQ(Const.CiHigh, 2.0);
}
