//===- tests/stats/DescriptiveTest.cpp --------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "stats/Descriptive.h"

#include <gtest/gtest.h>

using namespace hcsgc;

TEST(DescriptiveTest, Mean) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(DescriptiveTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
}

TEST(DescriptiveTest, QuantileInterpolation) {
  std::vector<double> S{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(quantile(S, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(S, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(quantile(S, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(quantile(S, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(quantile(S, 0.125), 15.0); // interpolated
}

TEST(DescriptiveTest, BoxplotQuartiles) {
  std::vector<double> S;
  for (int I = 1; I <= 9; ++I)
    S.push_back(I);
  BoxplotSummary B = boxplot(S);
  EXPECT_DOUBLE_EQ(B.Median, 5.0);
  EXPECT_DOUBLE_EQ(B.Q1, 3.0);
  EXPECT_DOUBLE_EQ(B.Q3, 7.0);
  EXPECT_DOUBLE_EQ(B.Mean, 5.0);
  EXPECT_EQ(B.MildOutliers, 0u);
  EXPECT_EQ(B.ExtremeOutliers, 0u);
  EXPECT_DOUBLE_EQ(B.Min, 1.0);
  EXPECT_DOUBLE_EQ(B.Max, 9.0);
}

TEST(DescriptiveTest, MildAndExtremeOutliers) {
  // Q1=2, Q3=4, IQR=2: mild fences [-1, 7], extreme fences [-4, 10].
  std::vector<double> S{1, 2, 2, 3, 3, 3, 4, 4, 8, 20};
  BoxplotSummary B = boxplot(S);
  // 8 is beyond Q3+1.5*IQR but within Q3+3*IQR for these quartiles; 20
  // is extreme. Compute the fences from the summary itself to stay
  // robust to the interpolation convention:
  double Iqr = B.Q3 - B.Q1;
  int Mild = 0, Extreme = 0;
  for (double V : S) {
    if (V < B.Q1 - 3 * Iqr || V > B.Q3 + 3 * Iqr)
      ++Extreme;
    else if (V < B.Q1 - 1.5 * Iqr || V > B.Q3 + 1.5 * Iqr)
      ++Mild;
  }
  EXPECT_EQ(B.MildOutliers, static_cast<size_t>(Mild));
  EXPECT_EQ(B.ExtremeOutliers, static_cast<size_t>(Extreme));
  EXPECT_GE(B.ExtremeOutliers, 1u); // 20 must be extreme
}

TEST(DescriptiveTest, WhiskersExcludeOutliers) {
  std::vector<double> S{1, 2, 3, 4, 5, 100};
  BoxplotSummary B = boxplot(S);
  EXPECT_LT(B.Max, 100.0); // whisker must not reach the outlier
  EXPECT_EQ(B.MildOutliers + B.ExtremeOutliers, 1u);
}

TEST(DescriptiveTest, EmptyAndSingleton) {
  BoxplotSummary E = boxplot({});
  EXPECT_EQ(E.N, 0u);
  BoxplotSummary S = boxplot({3.5});
  EXPECT_EQ(S.N, 1u);
  EXPECT_DOUBLE_EQ(S.Median, 3.5);
  EXPECT_DOUBLE_EQ(S.Min, 3.5);
  EXPECT_DOUBLE_EQ(S.Max, 3.5);
}
