//===- tests/support/ArgParseTest.cpp --------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ArgParse.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace hcsgc;

static ArgParse parse(std::vector<std::string> Argv) {
  static std::vector<std::string> Storage;
  Storage = std::move(Argv);
  static std::vector<char *> Ptrs;
  Ptrs.clear();
  Ptrs.push_back(const_cast<char *>("prog"));
  for (auto &S : Storage)
    Ptrs.push_back(S.data());
  return ArgParse(static_cast<int>(Ptrs.size()), Ptrs.data());
}

TEST(ArgParseTest, KeyValue) {
  ArgParse A = parse({"--runs=7", "--name=hello"});
  EXPECT_EQ(A.getInt("runs", 1), 7);
  EXPECT_EQ(A.getString("name", "x"), "hello");
}

TEST(ArgParseTest, Defaults) {
  ArgParse A = parse({});
  EXPECT_EQ(A.getInt("missing", 42), 42);
  EXPECT_EQ(A.getString("missing", "d"), "d");
  EXPECT_DOUBLE_EQ(A.getDouble("missing", 2.5), 2.5);
  EXPECT_TRUE(A.getBool("missing", true));
  EXPECT_FALSE(A.getBool("missing", false));
}

TEST(ArgParseTest, BareFlagIsTrue) {
  ArgParse A = parse({"--verbose"});
  EXPECT_TRUE(A.getBool("verbose", false));
}

TEST(ArgParseTest, ExplicitFalse) {
  ArgParse A = parse({"--verbose=0", "--x=false", "--y=off"});
  EXPECT_FALSE(A.getBool("verbose", true));
  EXPECT_FALSE(A.getBool("x", true));
  EXPECT_FALSE(A.getBool("y", true));
}

TEST(ArgParseTest, DoubleParsing) {
  ArgParse A = parse({"--scale=0.25"});
  EXPECT_DOUBLE_EQ(A.getDouble("scale", 1.0), 0.25);
}

TEST(ArgParseTest, EnvironmentFallback) {
  setenv("HCSGC_TEST_ENV_KEY", "123", 1);
  ArgParse A = parse({});
  EXPECT_EQ(A.getInt("test-env-key", 0), 123);
  unsetenv("HCSGC_TEST_ENV_KEY");
}

TEST(ArgParseTest, CommandLineBeatsEnvironment) {
  setenv("HCSGC_PRIO", "1", 1);
  ArgParse A = parse({"--prio=2"});
  EXPECT_EQ(A.getInt("prio", 0), 2);
  unsetenv("HCSGC_PRIO");
}

TEST(ArgParseTest, NonFlagArgumentsIgnored) {
  ArgParse A = parse({"positional", "--k=1"});
  EXPECT_EQ(A.getInt("k", 0), 1);
  EXPECT_EQ(A.getInt("positional", 9), 9);
}
