//===- tests/support/BitMapTest.cpp ---------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BitMap.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace hcsgc;

TEST(BitMapTest, StartsClear) {
  BitMap B(1000);
  EXPECT_EQ(B.size(), 1000u);
  EXPECT_EQ(B.count(), 0u);
  for (size_t I = 0; I < 1000; I += 37)
    EXPECT_FALSE(B.test(I));
}

TEST(BitMapTest, ParSetReportsTransition) {
  BitMap B(128);
  EXPECT_TRUE(B.parSet(5));
  EXPECT_FALSE(B.parSet(5));
  EXPECT_TRUE(B.test(5));
  EXPECT_EQ(B.count(), 1u);
}

TEST(BitMapTest, WordBoundaries) {
  BitMap B(200);
  for (size_t I : {0ul, 63ul, 64ul, 127ul, 128ul, 199ul}) {
    EXPECT_TRUE(B.parSet(I)) << I;
    EXPECT_TRUE(B.test(I)) << I;
  }
  EXPECT_EQ(B.count(), 6u);
}

TEST(BitMapTest, ClearAll) {
  BitMap B(256);
  for (size_t I = 0; I < 256; I += 3)
    B.set(I);
  EXPECT_GT(B.count(), 0u);
  B.clearAll();
  EXPECT_EQ(B.count(), 0u);
}

TEST(BitMapTest, FindNext) {
  BitMap B(300);
  B.set(10);
  B.set(64);
  B.set(299);
  EXPECT_EQ(B.findNext(0), 10u);
  EXPECT_EQ(B.findNext(10), 10u);
  EXPECT_EQ(B.findNext(11), 64u);
  EXPECT_EQ(B.findNext(65), 299u);
  EXPECT_EQ(B.findNext(300), BitMap::npos);
  B.clearAll();
  EXPECT_EQ(B.findNext(0), BitMap::npos);
}

TEST(BitMapTest, FindNextIteratesAllSetBits) {
  BitMap B(1024);
  std::vector<size_t> Expected;
  for (size_t I = 7; I < 1024; I += 13) {
    B.set(I);
    Expected.push_back(I);
  }
  std::vector<size_t> Seen;
  for (size_t I = B.findNext(0); I != BitMap::npos; I = B.findNext(I + 1))
    Seen.push_back(I);
  EXPECT_EQ(Seen, Expected);
}

TEST(BitMapTest, ResizeClears) {
  BitMap B(64);
  B.set(3);
  B.resize(128);
  EXPECT_EQ(B.size(), 128u);
  EXPECT_EQ(B.count(), 0u);
}

TEST(BitMapTest, ConcurrentParSetCountsEachBitOnce) {
  constexpr size_t Bits = 4096;
  BitMap B(Bits);
  std::atomic<size_t> Transitions{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&] {
      size_t Local = 0;
      for (size_t I = 0; I < Bits; ++I)
        if (B.parSet(I))
          ++Local;
      Transitions += Local;
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Transitions.load(), Bits);
  EXPECT_EQ(B.count(), Bits);
}
