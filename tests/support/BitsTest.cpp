//===- tests/support/BitsTest.cpp -----------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// The word-level kernels behind the hot metadata walks (INTERNALS §14)
// checked bit-for-bit against their scalar references: popcount/ctz/spread
// over exhaustive 16-bit patterns, the SWAR nibble-aging kernel against
// scalarAgeTempNibble over every single-nibble state and over seeded
// random 64-bit words with unconstrained lane contents.
//
//===----------------------------------------------------------------------===//

#include "support/Bits.h"

#include "TestSeeds.h"

#include <gtest/gtest.h>

#include <random>

using namespace hcsgc;

namespace {

unsigned popcountNaive(uint64_t W) {
  unsigned N = 0;
  for (; W; W >>= 1)
    N += static_cast<unsigned>(W & 1);
  return N;
}

uint64_t spreadNaive(uint16_t Bits) {
  uint64_t R = 0;
  for (unsigned I = 0; I < 16; ++I)
    if ((Bits >> I) & 1)
      R |= uint64_t(1) << (4 * I);
  return R;
}

/// The SWAR kernel applied nibble-by-nibble through the scalar spec.
uint64_t ageWordScalar(uint64_t W, uint16_t Live16, uint16_t Hot16) {
  uint64_t R = 0;
  for (unsigned I = 0; I < 16; ++I) {
    uint64_t Nibble = (W >> (4 * I)) & 0xF;
    uint64_t Aged = scalarAgeTempNibble(Nibble, (Live16 >> I) & 1,
                                        (Hot16 >> I) & 1);
    R |= Aged << (4 * I);
  }
  return R;
}

} // namespace

TEST(BitsTest, PopcountExhaustive16Bit) {
  for (uint32_t W = 0; W <= 0xFFFF; ++W)
    ASSERT_EQ(popcount64(W), popcountNaive(W)) << W;
  // Shifted into every 16-bit window of the word.
  for (uint32_t W = 0; W <= 0xFFFF; W += 13)
    for (unsigned Shift : {16u, 32u, 48u})
      ASSERT_EQ(popcount64(uint64_t(W) << Shift), popcountNaive(W));
}

TEST(BitsTest, PopcountRandom64Bit) {
  std::mt19937_64 Rng(test::testSeed(0xB175));
  for (int I = 0; I < 100000; ++I) {
    uint64_t W = Rng();
    ASSERT_EQ(popcount64(W), popcountNaive(W)) << W;
  }
  EXPECT_EQ(popcount64(0), 0u);
  EXPECT_EQ(popcount64(~uint64_t(0)), 64u);
}

TEST(BitsTest, CtzExhaustiveSingleBit) {
  for (unsigned I = 0; I < 64; ++I)
    ASSERT_EQ(ctz64(uint64_t(1) << I), I);
}

TEST(BitsTest, CtzRandom64Bit) {
  std::mt19937_64 Rng(test::testSeed(0xB176));
  for (int I = 0; I < 100000; ++I) {
    uint64_t W = Rng();
    if (W == 0)
      continue;
    unsigned Z = ctz64(W);
    ASSERT_EQ((W >> Z) & 1, 1u) << W;
    ASSERT_EQ(W & ((uint64_t(1) << Z) - 1), 0u) << W;
  }
}

TEST(BitsTest, SpreadBitsExhaustive16Bit) {
  for (uint32_t B = 0; B <= 0xFFFF; ++B)
    ASSERT_EQ(spreadBitsToNibbles(static_cast<uint16_t>(B)),
              spreadNaive(static_cast<uint16_t>(B)))
        << B;
}

// Every (nibble, live, hot) state, in every lane position, with a fixed
// busy pattern in the other lanes so cross-lane independence is covered.
TEST(BitsTest, SwarAgingExhaustiveSingleNibble) {
  for (unsigned Lane = 0; Lane < 16; ++Lane) {
    for (uint64_t Nibble = 0; Nibble < 16; ++Nibble) {
      for (unsigned LiveHot = 0; LiveHot < 4; ++LiveHot) {
        uint16_t Live16 = static_cast<uint16_t>((LiveHot & 1) << Lane);
        uint16_t Hot16 = static_cast<uint16_t>((LiveHot >> 1) << Lane);
        uint64_t W = Nibble << (4 * Lane);
        ASSERT_EQ(swarAgeTempNibbles(W, Live16, Hot16),
                  ageWordScalar(W, Live16, Hot16))
            << "lane=" << Lane << " nibble=" << Nibble
            << " live=" << (LiveHot & 1) << " hot=" << (LiveHot >> 1);
      }
    }
  }
}

// Seeded random full words: every lane busy simultaneously, arbitrary
// (including runtime-impossible) nibble states, arbitrary live/hot bits.
TEST(BitsTest, SwarAgingRandomWords) {
  std::mt19937_64 Rng(test::testSeed(0xB177));
  for (int I = 0; I < 200000; ++I) {
    uint64_t W = Rng();
    uint16_t Live16 = static_cast<uint16_t>(Rng());
    uint16_t Hot16 = static_cast<uint16_t>(Rng());
    ASSERT_EQ(swarAgeTempNibbles(W, Live16, Hot16),
              ageWordScalar(W, Live16, Hot16))
        << "W=" << W << " live=" << Live16 << " hot=" << Hot16;
  }
}

// The invariants INTERNALS §14 argues from: hot keeps temperature and
// clears streak; decay to zero seeds streak 1; an untouched zero lane
// stays zero; a saturated cold lane is a fixed point.
TEST(BitsTest, SwarAgingSpotSemantics) {
  // Hot lane at temperature 3, streak 2 (seeded state): streak cleared.
  EXPECT_EQ(swarAgeTempNibbles(0xB, 0x1, 0x1), 0x3u);
  // Warm lane decaying 1 -> 0: streak starts at 1 (nibble 0x1 -> 0x4).
  EXPECT_EQ(swarAgeTempNibbles(0x1, 0x0, 0x0), 0x4u);
  // Cold live lane, streak 2 -> 3 (nibble 0x8 -> 0xC).
  EXPECT_EQ(swarAgeTempNibbles(0x8, 0x1, 0x0), 0xCu);
  // Saturated cold lane: fixed point (0xC stays 0xC).
  EXPECT_EQ(swarAgeTempNibbles(0xC, 0x0, 0x0), 0xCu);
  // Dead zero lane: untouched.
  EXPECT_EQ(swarAgeTempNibbles(0x0, 0x0, 0x0), 0x0u);
  // Live zero lane: cold streak begins (0x0 -> 0x4).
  EXPECT_EQ(swarAgeTempNibbles(0x0, 0x1, 0x0), 0x4u);
}
