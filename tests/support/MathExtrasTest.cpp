//===- tests/support/MathExtrasTest.cpp ------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/MathExtras.h"

#include <gtest/gtest.h>

using namespace hcsgc;

TEST(MathExtrasTest, IsPowerOf2) {
  EXPECT_FALSE(isPowerOf2(0));
  EXPECT_TRUE(isPowerOf2(1));
  EXPECT_TRUE(isPowerOf2(2));
  EXPECT_FALSE(isPowerOf2(3));
  EXPECT_TRUE(isPowerOf2(uint64_t(1) << 40));
  EXPECT_FALSE(isPowerOf2((uint64_t(1) << 40) + 1));
}

TEST(MathExtrasTest, AlignUpDown) {
  EXPECT_EQ(alignUp(0, 8), 0u);
  EXPECT_EQ(alignUp(1, 8), 8u);
  EXPECT_EQ(alignUp(8, 8), 8u);
  EXPECT_EQ(alignUp(9, 8), 16u);
  EXPECT_EQ(alignDown(9, 8), 8u);
  EXPECT_EQ(alignDown(16, 8), 16u);
  EXPECT_EQ(alignUp(100, 64), 128u);
}

TEST(MathExtrasTest, Log2) {
  EXPECT_EQ(log2Floor(1), 0u);
  EXPECT_EQ(log2Floor(2), 1u);
  EXPECT_EQ(log2Floor(3), 1u);
  EXPECT_EQ(log2Floor(1024), 10u);
  EXPECT_EQ(log2Ceil(1), 0u);
  EXPECT_EQ(log2Ceil(3), 2u);
  EXPECT_EQ(log2Ceil(1024), 10u);
  EXPECT_EQ(log2Ceil(1025), 11u);
}

TEST(MathExtrasTest, NextPowerOf2) {
  EXPECT_EQ(nextPowerOf2(1), 1u);
  EXPECT_EQ(nextPowerOf2(3), 4u);
  EXPECT_EQ(nextPowerOf2(4), 4u);
  EXPECT_EQ(nextPowerOf2(1000), 1024u);
}

TEST(MathExtrasTest, DivideCeil) {
  EXPECT_EQ(divideCeil(0, 4), 0u);
  EXPECT_EQ(divideCeil(1, 4), 1u);
  EXPECT_EQ(divideCeil(4, 4), 1u);
  EXPECT_EQ(divideCeil(5, 4), 2u);
}
