//===- tests/support/RandomTest.cpp ----------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <gtest/gtest.h>

#include <set>

using namespace hcsgc;

TEST(RandomTest, DeterministicPerSeed) {
  SplitMix64 A(42), B(42), C(43);
  for (int I = 0; I < 100; ++I) {
    uint64_t V = A.next();
    EXPECT_EQ(V, B.next());
    EXPECT_NE(V, C.next()); // astronomically unlikely to collide
  }
}

TEST(RandomTest, ReseedRestartsSequence) {
  // The paper's synthetic benchmark depends on this: "use same seed each
  // loop" must reproduce the identical access sequence.
  SplitMix64 R(7);
  std::vector<uint64_t> First;
  for (int I = 0; I < 50; ++I)
    First.push_back(R.nextBelow(1000));
  R.seed(7);
  for (int I = 0; I < 50; ++I)
    EXPECT_EQ(R.nextBelow(1000), First[I]);
}

TEST(RandomTest, NextBelowInRange) {
  SplitMix64 R(1);
  for (int I = 0; I < 10000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(R.nextBelow(1), 0u);
}

TEST(RandomTest, NextBelowCoversRange) {
  SplitMix64 R(3);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I)
    Seen.insert(R.nextBelow(8));
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  SplitMix64 R(5);
  for (int I = 0; I < 10000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RandomTest, ShufflePermutes) {
  std::vector<int> V{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Orig = V;
  SplitMix64 R(9);
  shuffle(V, R);
  std::vector<int> Sorted = V;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_EQ(Sorted, Orig);
}

TEST(RandomTest, ZipfSkewsTowardLowIndices) {
  ZipfSampler Z(100, 1.0);
  SplitMix64 R(11);
  size_t LowCount = 0;
  constexpr int N = 20000;
  for (int I = 0; I < N; ++I)
    if (Z.sample(R) < 10)
      ++LowCount;
  // For theta=1 over 100 items, the first 10 items carry ~56% of mass.
  EXPECT_GT(LowCount, N / 3);
  EXPECT_LT(LowCount, (N * 4) / 5);
}

TEST(RandomTest, ZipfStaysInDomain) {
  ZipfSampler Z(16, 0.8);
  SplitMix64 R(13);
  for (int I = 0; I < 5000; ++I)
    EXPECT_LT(Z.sample(R), 16u);
}
