//===- tests/workloads/GraphAlgosTest.cpp --------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/GraphAlgos.h"

#include "TestSeeds.h"

#include <gtest/gtest.h>

using namespace hcsgc;

namespace {

GcConfig graphConfig() {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 1024 * 1024;
  Cfg.MaxHeapBytes = 48u << 20;
  return Cfg;
}

/// Builds a CsrGraph from an explicit undirected edge list.
CsrGraph csrFromEdges(size_t N,
                      std::vector<std::pair<uint32_t, uint32_t>> Edges) {
  CsrGraph G;
  G.N = N;
  std::vector<std::vector<uint32_t>> Adj(N);
  for (auto [U, V] : Edges) {
    Adj[U].push_back(V);
    Adj[V].push_back(U);
  }
  G.Offsets.assign(N + 1, 0);
  for (size_t I = 0; I < N; ++I) {
    std::sort(Adj[I].begin(), Adj[I].end());
    G.Offsets[I + 1] = G.Offsets[I] + static_cast<uint32_t>(Adj[I].size());
  }
  for (size_t I = 0; I < N; ++I)
    for (uint32_t T : Adj[I])
      G.Adj.push_back(T);
  return G;
}

} // namespace

TEST(GraphAlgosTest, ComponentsOfDisconnectedGraph) {
  // Two triangles plus two isolated vertices: 4 components.
  CsrGraph Csr = csrFromEdges(
      8, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  Runtime RT(graphConfig());
  auto M = RT.attachMutator();
  {
    ManagedGraph G(*M, Csr, /*ShuffleSeed=*/test::testSeed(71), false);
    CcResult R = connectedComponents(*M, G, 1);
    EXPECT_EQ(R.Components, 4u);
    EXPECT_EQ(R.ArticulationPoints, 0u); // triangles have none
  }
  M.reset();
}

TEST(GraphAlgosTest, ArticulationPointsOfPath) {
  // Path 0-1-2-3-4: internal vertices 1,2,3 are articulation points.
  CsrGraph Csr = csrFromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  Runtime RT(graphConfig());
  auto M = RT.attachMutator();
  {
    ManagedGraph G(*M, Csr, 0x5eed, false);
    CcResult R = connectedComponents(*M, G, 1);
    EXPECT_EQ(R.Components, 1u);
    EXPECT_EQ(R.ArticulationPoints, 3u);
  }
  M.reset();
}

TEST(GraphAlgosTest, ArticulationPointOfBridgedTriangles) {
  // Two triangles sharing vertex 2: vertex 2 is the articulation point.
  CsrGraph Csr = csrFromEdges(
      5, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}});
  Runtime RT(graphConfig());
  auto M = RT.attachMutator();
  {
    ManagedGraph G(*M, Csr, 0x5eed, false);
    CcResult R = connectedComponents(*M, G, 1);
    EXPECT_EQ(R.Components, 1u);
    EXPECT_EQ(R.ArticulationPoints, 1u);
  }
  M.reset();
}

TEST(GraphAlgosTest, RepeatedPassesAgree) {
  CsrGraph Csr = generateWebGraph({400, 2500, 11, 0.6});
  Runtime RT(graphConfig());
  auto M = RT.attachMutator();
  {
    ManagedGraph G(*M, Csr, 0x5eed, false);
    CcResult First = connectedComponents(*M, G, 1);
    for (int64_t Epoch = 2; Epoch <= 4; ++Epoch) {
      CcResult R = connectedComponents(*M, G, Epoch);
      EXPECT_EQ(R.Components, First.Components);
      EXPECT_EQ(R.ArticulationPoints, First.ArticulationPoints);
      EXPECT_EQ(R.LowSum, First.LowSum);
      EXPECT_EQ(R.EdgesVisited, First.EdgesVisited);
    }
  }
  M.reset();
}

TEST(GraphAlgosTest, CcSurvivesGcBetweenPasses) {
  CsrGraph Csr = generateWebGraph({400, 2500, 11, 0.6});
  GcConfig Cfg = graphConfig();
  Cfg.RelocateAllSmallPages = true;
  Cfg.LazyRelocate = true;
  Runtime RT(Cfg);
  auto M = RT.attachMutator();
  {
    ManagedGraph G(*M, Csr, 0x5eed, false);
    CcResult First = connectedComponents(*M, G, 1);
    for (int64_t Epoch = 2; Epoch <= 4; ++Epoch) {
      M->requestGcAndWait(); // everything moves
      CcResult R = connectedComponents(*M, G, Epoch);
      EXPECT_EQ(R.Components, First.Components);
      EXPECT_EQ(R.LowSum, First.LowSum);
    }
  }
  M.reset();
}

TEST(GraphAlgosTest, CliquesOfTriangle) {
  CsrGraph Csr = csrFromEdges(3, {{0, 1}, {1, 2}, {2, 0}});
  Runtime RT(graphConfig());
  auto M = RT.attachMutator();
  {
    ManagedGraph G(*M, Csr, 0x5eed, /*WithNeighborIds=*/true);
    BkResult R = bronKerbosch(*M, G, 100000);
    EXPECT_FALSE(R.Truncated);
    EXPECT_EQ(R.Cliques, 1u);
    EXPECT_EQ(R.MaxSize, 3u);
  }
  M.reset();
}

TEST(GraphAlgosTest, CliquesOfK5) {
  std::vector<std::pair<uint32_t, uint32_t>> Edges;
  for (uint32_t U = 0; U < 5; ++U)
    for (uint32_t V = U + 1; V < 5; ++V)
      Edges.push_back({U, V});
  CsrGraph Csr = csrFromEdges(5, Edges);
  Runtime RT(graphConfig());
  auto M = RT.attachMutator();
  {
    ManagedGraph G(*M, Csr, 0x5eed, true);
    BkResult R = bronKerbosch(*M, G, 100000);
    EXPECT_EQ(R.Cliques, 1u);
    EXPECT_EQ(R.MaxSize, 5u);
  }
  M.reset();
}

TEST(GraphAlgosTest, CliquesOfPathAreEdges) {
  // A path's maximal cliques are exactly its edges.
  CsrGraph Csr = csrFromEdges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  Runtime RT(graphConfig());
  auto M = RT.attachMutator();
  {
    ManagedGraph G(*M, Csr, 0x5eed, true);
    BkResult R = bronKerbosch(*M, G, 100000);
    EXPECT_EQ(R.Cliques, 5u);
    EXPECT_EQ(R.MaxSize, 2u);
  }
  M.reset();
}

TEST(GraphAlgosTest, TwoTrianglesSharingAnEdge) {
  // Vertices {0,1,2} and {1,2,3}: two maximal triangles.
  CsrGraph Csr = csrFromEdges(4, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}});
  Runtime RT(graphConfig());
  auto M = RT.attachMutator();
  {
    ManagedGraph G(*M, Csr, 0x5eed, true);
    BkResult R = bronKerbosch(*M, G, 100000);
    EXPECT_EQ(R.Cliques, 2u);
    EXPECT_EQ(R.MaxSize, 3u);
  }
  M.reset();
}

TEST(GraphAlgosTest, IsolatedVerticesAreCliques) {
  CsrGraph Csr = csrFromEdges(4, {{0, 1}});
  Runtime RT(graphConfig());
  auto M = RT.attachMutator();
  {
    ManagedGraph G(*M, Csr, 0x5eed, true);
    BkResult R = bronKerbosch(*M, G, 100000);
    EXPECT_EQ(R.Cliques, 3u); // {0,1}, {2}, {3}
  }
  M.reset();
}

TEST(GraphAlgosTest, BudgetTruncates) {
  CsrGraph Csr = generateWebGraph({300, 4000, 13, 0.7});
  Runtime RT(graphConfig());
  auto M = RT.attachMutator();
  {
    ManagedGraph G(*M, Csr, 0x5eed, true);
    BkResult R = bronKerbosch(*M, G, /*MaxSteps=*/50);
    EXPECT_TRUE(R.Truncated);
    EXPECT_LE(R.Steps, 52u);
  }
  M.reset();
}

TEST(GraphAlgosTest, CliqueCountStableUnderShuffleAndGc) {
  CsrGraph Csr = generateWebGraph({200, 1200, 17, 0.6});
  uint64_t Reference = 0;
  for (uint64_t Seed : {0ull, 0x5eedull, 0x123ull}) {
    GcConfig Cfg = graphConfig();
    Cfg.RelocateAllSmallPages = true;
    Runtime RT(Cfg);
    auto M = RT.attachMutator();
    {
      ManagedGraph G(*M, Csr, Seed, true);
      M->requestGcAndWait();
      BkResult R = bronKerbosch(*M, G, 1000000);
      EXPECT_FALSE(R.Truncated);
      if (Reference == 0)
        Reference = R.Cliques;
      else
        EXPECT_EQ(R.Cliques, Reference) << "seed " << Seed;
    }
    M.reset();
  }
}
