//===- tests/workloads/GraphGenTest.cpp ----------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/GraphGen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace hcsgc;

TEST(GraphGenTest, CsrIsConsistent) {
  CsrGraph G = generateWebGraph({500, 3000, 1, 0.6});
  EXPECT_EQ(G.N, 500u);
  EXPECT_EQ(G.Offsets.size(), 501u);
  EXPECT_EQ(G.Offsets[0], 0u);
  EXPECT_EQ(G.Offsets.back(), G.Adj.size());
  for (size_t I = 0; I < G.N; ++I)
    EXPECT_LE(G.Offsets[I], G.Offsets[I + 1]);
}

TEST(GraphGenTest, UndirectedAndSimple) {
  CsrGraph G = generateWebGraph({300, 2000, 7, 0.5});
  std::set<std::pair<uint32_t, uint32_t>> Edges;
  for (uint32_t U = 0; U < G.N; ++U)
    for (uint32_t K = G.Offsets[U]; K < G.Offsets[U + 1]; ++K) {
      uint32_t V = G.Adj[K];
      EXPECT_NE(U, V) << "self loop";
      EXPECT_LT(V, G.N);
      EXPECT_TRUE(Edges.insert({U, V}).second)
          << "duplicate directed edge " << U << "->" << V;
    }
  // Symmetry: (u,v) present iff (v,u) present.
  for (const auto &[U, V] : Edges)
    EXPECT_TRUE(Edges.count({V, U})) << U << "<->" << V;
}

TEST(GraphGenTest, AdjacencySorted) {
  CsrGraph G = generateWebGraph({200, 1500, 3, 0.6});
  for (uint32_t U = 0; U < G.N; ++U)
    EXPECT_TRUE(std::is_sorted(G.Adj.begin() + G.Offsets[U],
                               G.Adj.begin() + G.Offsets[U + 1]));
}

TEST(GraphGenTest, DeterministicPerSeed) {
  CsrGraph A = generateWebGraph({400, 2500, 9, 0.6});
  CsrGraph B = generateWebGraph({400, 2500, 9, 0.6});
  CsrGraph C = generateWebGraph({400, 2500, 10, 0.6});
  EXPECT_EQ(A.Adj, B.Adj);
  EXPECT_EQ(A.Offsets, B.Offsets);
  EXPECT_NE(A.Adj, C.Adj);
}

TEST(GraphGenTest, EdgeCountNearTarget) {
  CsrGraph G = generateWebGraph({2000, 20000, 5, 0.6});
  // Deduplication loses some edges, but the bulk must materialize.
  EXPECT_GT(G.edgeCount(), 20000u * 7 / 10);
  EXPECT_LE(G.edgeCount(), 20000u);
}

TEST(GraphGenTest, PreferentialAttachmentSkewsDegrees) {
  CsrGraph G = generateWebGraph({3000, 30000, 2, 0.8});
  size_t MaxDeg = 0;
  for (size_t I = 0; I < G.N; ++I)
    MaxDeg = std::max(MaxDeg, G.degree(I));
  double AvgDeg = 2.0 * static_cast<double>(G.edgeCount()) /
                  static_cast<double>(G.N);
  // Power-law-ish: the hub degree dwarfs the average (deduplication of
  // repeated hub pairs caps the tail, so the factor is conservative).
  EXPECT_GT(static_cast<double>(MaxDeg), AvgDeg * 2.5);
}

TEST(GraphGenTest, Table3Presets) {
  EXPECT_EQ(ukCcSpec().Nodes, 28128u);
  EXPECT_EQ(ukCcSpec().Edges, 900002u);
  EXPECT_EQ(ukMcSpec().Nodes, 5099u);
  EXPECT_EQ(ukMcSpec().Edges, 239294u);
  EXPECT_EQ(enwikiCcSpec().Nodes, 28126u);
  EXPECT_EQ(enwikiCcSpec().Edges, 80002u);
  EXPECT_EQ(enwikiMcSpec().Nodes, 43354u);
  EXPECT_EQ(enwikiMcSpec().Edges, 170660u);
}

TEST(GraphGenTest, ScaleSpec) {
  GraphSpec S = scaleSpec(ukCcSpec(), 0.1);
  EXPECT_EQ(S.Nodes, 2812u);
  EXPECT_EQ(S.Edges, 90000u);
  GraphSpec Same = scaleSpec(ukCcSpec(), 1.0);
  EXPECT_EQ(Same.Nodes, ukCcSpec().Nodes);
  GraphSpec Tiny = scaleSpec({20, 40, 1, 0.5}, 0.001);
  EXPECT_GE(Tiny.Nodes, 16u); // floor
}
