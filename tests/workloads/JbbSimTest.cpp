//===- tests/workloads/JbbSimTest.cpp ------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/JbbSim.h"

#include <gtest/gtest.h>

using namespace hcsgc;

namespace {

GcConfig jbbConfig(bool Probes) {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 1024 * 1024;
  Cfg.MaxHeapBytes = 24u << 20;
  Cfg.EnableProbes = Probes;
  return Cfg;
}

JbbSimParams tinyParams() {
  JbbSimParams P;
  P.Warehouses = 4;
  P.RampLevels = 3;
  P.TxnsPerLevelBase = 500;
  P.RingSize = 2000;
  return P;
}

} // namespace

TEST(JbbSimTest, ProcessesAllTransactions) {
  Runtime RT(jbbConfig(true));
  auto M = RT.attachMutator();
  JbbSimParams P = tinyParams();
  JbbSimResult R = runJbbSim(*M, P);
  // Levels 1+2+3 at 500 per level-step.
  EXPECT_EQ(R.TxnsProcessed, 500u * (1 + 2 + 3));
  EXPECT_GT(R.ThroughputScore, 0.0);
  EXPECT_GT(R.LatencyScore, 0.0);
  M.reset();
}

TEST(JbbSimTest, DeterministicChecksum) {
  JbbSimParams P = tinyParams();
  uint64_t First = 0;
  for (int Round = 0; Round < 2; ++Round) {
    Runtime RT(jbbConfig(true));
    auto M = RT.attachMutator();
    JbbSimResult R = runJbbSim(*M, P);
    if (Round == 0)
      First = R.Checksum;
    else
      EXPECT_EQ(R.Checksum, First);
    M.reset();
  }
}

TEST(JbbSimTest, LowSurvivalRate) {
  // §4.7: "the survival rate of objects allocated prior to GC start ...
  // is ~1%". With RetainPct=1 the retained ring is a tiny slice of the
  // allocation volume.
  JbbSimParams P = tinyParams();
  P.RampLevels = 5;
  GcConfig Cfg = jbbConfig(false);
  Cfg.MaxHeapBytes = 8u << 20;
  Cfg.TriggerFraction = 0.4;
  Cfg.TriggerHysteresisFraction = 0.02;
  Runtime RT(Cfg);
  auto M = RT.attachMutator();
  JbbSimResult R = runJbbSim(*M, P);
  EXPECT_GT(R.TxnsProcessed, 0u);
  M.reset();
  auto Records = RT.gcStats().snapshot();
  ASSERT_GE(Records.size(), 1u);
  // Live bytes at mark stay well below the heap: most objects died.
  for (const CycleRecord &Rec : Records)
    EXPECT_LT(Rec.LiveBytesMarked, RT.maxHeapBytes() / 2);
}

TEST(JbbSimTest, WorksWithoutProbes) {
  Runtime RT(jbbConfig(false));
  auto M = RT.attachMutator();
  JbbSimParams P = tinyParams();
  JbbSimResult R = runJbbSim(*M, P);
  EXPECT_GT(R.TxnsProcessed, 0u);
  // Falls back to wall-clock scoring.
  EXPECT_GT(R.ThroughputScore, 0.0);
  M.reset();
}
