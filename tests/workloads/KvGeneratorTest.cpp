//===- tests/workloads/KvGeneratorTest.cpp -------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// Statistical tests for the KV key choosers: chi-square goodness of fit
// of the empirical Zipf rank distribution against the analytic PMF,
// hotspot op-fraction tolerance over a million draws, and bit-exact
// determinism for equal seeds.
//
//===----------------------------------------------------------------------===//

#include "workloads/KvWorkload.h"

#include "TestSeeds.h"
#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>
#include <numeric>
#include <vector>

using namespace hcsgc;
using hcsgc::test::testSeed;

namespace {

/// Draws \p Draws ranks and returns the chi-square statistic against the
/// chooser's analytic pmf over \p Keys cells.
double chiSquare(const KvKeySpace &KS, size_t Keys, size_t Draws,
                 uint64_t Seed) {
  std::vector<uint64_t> Observed(Keys, 0);
  SplitMix64 Rng(Seed);
  for (size_t I = 0; I < Draws; ++I) {
    uint64_t R = KS.pickRank(Rng);
    EXPECT_LT(R, Keys);
    ++Observed[R];
  }
  double Chi2 = 0;
  for (size_t R = 0; R < Keys; ++R) {
    double E = KS.pmf(R) * static_cast<double>(Draws);
    EXPECT_GT(E, 5.0) << "cell " << R << " too thin for chi-square";
    double D = static_cast<double>(Observed[R]) - E;
    Chi2 += D * D / E;
  }
  return Chi2;
}

/// Conservative acceptance bound for a chi-square statistic with \p Df
/// degrees of freedom: mean + 6 sigma (mean = df, variance = 2 df).
/// A correct sampler lands under this with overwhelming probability;
/// a systematically wrong pmf blows past it by orders of magnitude.
double chiSquareBound(size_t Df) {
  return static_cast<double>(Df) + 6.0 * std::sqrt(2.0 * static_cast<double>(Df));
}

KvKeySpace::Params zipfParams(double Theta, uint64_t Seed) {
  KvKeySpace::Params P;
  P.Keys = 64;
  P.D = KvKeySpace::Dist::Zipf;
  P.Theta = Theta;
  P.Seed = Seed;
  return P;
}

} // namespace

TEST(KvGeneratorTest, PmfSumsToOne) {
  for (KvKeySpace::Dist D :
       {KvKeySpace::Dist::Uniform, KvKeySpace::Dist::Zipf,
        KvKeySpace::Dist::Hotspot}) {
    KvKeySpace::Params P;
    P.Keys = 1000;
    P.D = D;
    P.Seed = testSeed(0x4B01);
    KvKeySpace KS(P);
    double Sum = 0;
    for (uint64_t R = 0; R < P.Keys; ++R)
      Sum += KS.pmf(R);
    EXPECT_NEAR(Sum, 1.0, 1e-9) << "dist " << static_cast<int>(D);
  }
}

TEST(KvGeneratorTest, ZipfChiSquareTheta099) {
  const size_t Keys = 64, Draws = 200 * 1000;
  KvKeySpace KS(zipfParams(0.99, testSeed(0x4B02)));
  double Chi2 = chiSquare(KS, Keys, Draws, testSeed(0x4B03));
  EXPECT_LT(Chi2, chiSquareBound(Keys - 1));
}

TEST(KvGeneratorTest, ZipfChiSquareTheta05) {
  const size_t Keys = 64, Draws = 200 * 1000;
  KvKeySpace KS(zipfParams(0.5, testSeed(0x4B04)));
  double Chi2 = chiSquare(KS, Keys, Draws, testSeed(0x4B05));
  EXPECT_LT(Chi2, chiSquareBound(Keys - 1));
}

TEST(KvGeneratorTest, UniformChiSquare) {
  const size_t Keys = 64, Draws = 200 * 1000;
  KvKeySpace::Params P;
  P.Keys = Keys;
  P.D = KvKeySpace::Dist::Uniform;
  P.Seed = testSeed(0x4B06);
  KvKeySpace KS(P);
  double Chi2 = chiSquare(KS, Keys, Draws, testSeed(0x4B07));
  EXPECT_LT(Chi2, chiSquareBound(Keys - 1));
}

TEST(KvGeneratorTest, ZipfHeadIsActuallySkewed) {
  // Sanity beyond GOF: at theta=0.99 over 64 keys, rank 0 alone should
  // take ~20% of draws; uniform would give 1.6%.
  const size_t Draws = 100 * 1000;
  KvKeySpace KS(zipfParams(0.99, testSeed(0x4B08)));
  SplitMix64 Rng(testSeed(0x4B09));
  size_t Rank0 = 0;
  for (size_t I = 0; I < Draws; ++I)
    Rank0 += KS.pickRank(Rng) == 0;
  double Frac = static_cast<double>(Rank0) / Draws;
  EXPECT_GT(Frac, 0.15);
  EXPECT_LT(Frac, 0.30);
}

TEST(KvGeneratorTest, HotspotFractionWithinTolerance) {
  // 20% of keys get 80% of ops. Over 1M draws the binomial sigma on the
  // hot fraction is sqrt(.8*.2/1e6) = 4e-4; allow 10 sigma.
  KvKeySpace::Params P;
  P.Keys = 100 * 1000;
  P.D = KvKeySpace::Dist::Hotspot;
  P.HotKeyFraction = 0.2;
  P.HotOpFraction = 0.8;
  P.Seed = testSeed(0x4B0A);
  KvKeySpace KS(P);
  EXPECT_EQ(KS.hotCount(), 20 * 1000u);

  const size_t Draws = 1000 * 1000;
  SplitMix64 Rng(testSeed(0x4B0B));
  size_t Hot = 0;
  for (size_t I = 0; I < Draws; ++I)
    Hot += KS.hotRank(KS.pickRank(Rng));
  double Frac = static_cast<double>(Hot) / Draws;
  EXPECT_NEAR(Frac, 0.8, 0.004);
}

TEST(KvGeneratorTest, HotspotColdTailIsUniform) {
  // The 20% of ops that land in the cold tail should spread evenly:
  // chi-square over the tail cells, conditioned on landing there.
  KvKeySpace::Params P;
  P.Keys = 80;
  P.D = KvKeySpace::Dist::Hotspot;
  P.HotKeyFraction = 0.2; // 16 hot, 64 cold
  P.HotOpFraction = 0.8;
  P.Seed = testSeed(0x4B0C);
  KvKeySpace KS(P);

  const size_t Draws = 400 * 1000;
  std::vector<uint64_t> Observed(P.Keys, 0);
  SplitMix64 Rng(testSeed(0x4B0D));
  uint64_t Tail = 0;
  for (size_t I = 0; I < Draws; ++I) {
    uint64_t R = KS.pickRank(Rng);
    ++Observed[R];
    Tail += !KS.hotRank(R);
  }
  const size_t ColdN = P.Keys - KS.hotCount();
  double Chi2 = 0;
  double E = static_cast<double>(Tail) / static_cast<double>(ColdN);
  for (size_t R = KS.hotCount(); R < P.Keys; ++R) {
    double D = static_cast<double>(Observed[R]) - E;
    Chi2 += D * D / E;
  }
  EXPECT_LT(Chi2, chiSquareBound(ColdN - 1));
}

TEST(KvGeneratorTest, EqualSeedsGiveBitIdenticalStreams) {
  KvKeySpace::Params P;
  P.Keys = 5000;
  P.D = KvKeySpace::Dist::Zipf;
  P.Theta = 0.99;
  P.Seed = testSeed(0x4B0E);
  KvKeySpace A(P), B(P);
  SplitMix64 RngA(testSeed(0x4B0F)), RngB(testSeed(0x4B0F));
  for (int I = 0; I < 10 * 1000; ++I)
    ASSERT_EQ(A.pick(RngA), B.pick(RngB)) << "diverged at draw " << I;
}

TEST(KvGeneratorTest, DifferentSeedsScatterDifferently) {
  KvKeySpace::Params P;
  P.Keys = 5000;
  P.Seed = testSeed(0x4B10);
  KvKeySpace A(P);
  P.Seed = testSeed(0x4B11);
  KvKeySpace B(P);
  size_t Same = 0;
  for (uint64_t R = 0; R < P.Keys; ++R)
    Same += A.keyOfRank(R) == B.keyOfRank(R);
  // Two independent permutations of 5000 elements agree on ~1 position.
  EXPECT_LT(Same, 50u);
}

TEST(KvGeneratorTest, PermutationIsValidAndScattersHotSet) {
  KvKeySpace::Params P;
  P.Keys = 10 * 1000;
  P.D = KvKeySpace::Dist::Hotspot;
  P.HotKeyFraction = 0.2;
  P.Seed = testSeed(0x4B12);
  KvKeySpace KS(P);

  // Bijection onto [0, Keys).
  std::vector<uint64_t> Keys;
  Keys.reserve(P.Keys);
  for (uint64_t R = 0; R < P.Keys; ++R)
    Keys.push_back(KS.keyOfRank(R));
  std::sort(Keys.begin(), Keys.end());
  for (uint64_t K = 0; K < P.Keys; ++K)
    ASSERT_EQ(Keys[K], K);

  // Hot ranks map across the whole keyspace, not a contiguous prefix:
  // their mean key should sit near Keys/2, and they should reach both
  // the bottom and top deciles.
  uint64_t Lo = P.Keys, Hi = 0, Sum = 0;
  for (uint64_t R = 0; R < KS.hotCount(); ++R) {
    uint64_t K = KS.keyOfRank(R);
    Lo = std::min(Lo, K);
    Hi = std::max(Hi, K);
    Sum += K;
  }
  double Mean = static_cast<double>(Sum) / KS.hotCount();
  EXPECT_LT(Lo, P.Keys / 10);
  EXPECT_GT(Hi, P.Keys * 9 / 10);
  EXPECT_NEAR(Mean, P.Keys / 2.0, P.Keys / 10.0);
}
