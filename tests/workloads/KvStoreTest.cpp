//===- tests/workloads/KvStoreTest.cpp -----------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// Correctness of the managed KV store: put/get/remove semantics, version
// bumps, self-validating payloads, tombstone purges, survival across
// relocating GC cycles, concurrent readers/writers, and the workload
// driver's schedule-invariant checksum.
//
//===----------------------------------------------------------------------===//

#include "workloads/KvWorkload.h"

#include "gc/Safepoint.h"
#include "support/Random.h"

#include "TestSeeds.h"

#include <atomic>
#include <gtest/gtest.h>
#include <set>
#include <thread>
#include <vector>

using namespace hcsgc;
using hcsgc::test::testSeed;

namespace {

GcConfig kvConfig() {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 1024 * 1024;
  Cfg.MaxHeapBytes = 48u << 20;
  return Cfg;
}

} // namespace

TEST(KvStoreTest, PutGetRoundTrip) {
  Runtime RT(kvConfig());
  auto M = RT.attachMutator();
  {
    KvStoreParams P;
    P.Capacity = 1024;
    P.Shards = 4;
    KvStore Store(*M, P);
    for (uint64_t K = 0; K < 500; ++K)
      EXPECT_EQ(Store.put(*M, K), 1u);
    EXPECT_EQ(Store.size(), 500u);
    uint64_t V = 0;
    for (uint64_t K = 0; K < 500; ++K) {
      ASSERT_EQ(Store.get(*M, K, &V), KvReadStatus::Hit) << "key " << K;
      EXPECT_EQ(V, 1u);
    }
    EXPECT_EQ(Store.get(*M, 9999), KvReadStatus::Miss);
  }
  M.reset();
}

TEST(KvStoreTest, UpdateBumpsVersion) {
  Runtime RT(kvConfig());
  auto M = RT.attachMutator();
  {
    KvStore Store(*M, KvStoreParams{256, 2, 4});
    EXPECT_EQ(Store.put(*M, 42), 1u);
    EXPECT_EQ(Store.put(*M, 42), 2u);
    EXPECT_EQ(Store.put(*M, 42), 3u);
    EXPECT_EQ(Store.size(), 1u);
    uint64_t V = 0;
    ASSERT_EQ(Store.get(*M, 42, &V), KvReadStatus::Hit);
    EXPECT_EQ(V, 3u);
  }
  M.reset();
}

TEST(KvStoreTest, RemoveThenReinsertResetsVersion) {
  Runtime RT(kvConfig());
  auto M = RT.attachMutator();
  {
    KvStore Store(*M, KvStoreParams{256, 2, 4});
    Store.put(*M, 7);
    Store.put(*M, 7);
    EXPECT_TRUE(Store.remove(*M, 7));
    EXPECT_FALSE(Store.remove(*M, 7));
    EXPECT_EQ(Store.get(*M, 7), KvReadStatus::Miss);
    EXPECT_EQ(Store.size(), 0u);
    EXPECT_EQ(Store.put(*M, 7), 1u);
    EXPECT_EQ(Store.size(), 1u);
  }
  M.reset();
}

TEST(KvStoreTest, TombstonePurgeRebuildsAndKeepsLiveKeys) {
  Runtime RT(kvConfig());
  auto M = RT.attachMutator();
  {
    // One shard, small table: Slots = pow2(2*64) = 128, purge threshold
    // Slots/4 = 32 tombstones.
    KvStoreParams P;
    P.Capacity = 64;
    P.Shards = 1;
    P.ValueWords = 4;
    KvStore Store(*M, P);
    ASSERT_EQ(Store.shards(), 1u);

    for (uint64_t K = 0; K < 40; ++K)
      Store.put(*M, K);
    // Toggle 45 extra keys to pile up tombstones past the threshold.
    for (uint64_t K = 100; K < 145; ++K) {
      Store.put(*M, K);
      Store.remove(*M, K);
    }
    EXPECT_GT(Store.rebuilds(), 0u) << "purge never triggered";
    EXPECT_EQ(Store.size(), 40u);
    for (uint64_t K = 0; K < 40; ++K)
      ASSERT_EQ(Store.get(*M, K), KvReadStatus::Hit) << "key " << K;
    for (uint64_t K = 100; K < 145; ++K)
      ASSERT_EQ(Store.get(*M, K), KvReadStatus::Miss) << "key " << K;

    KvScanResult Scan = Store.scanAll(*M);
    EXPECT_EQ(Scan.Live, 40u);
    EXPECT_EQ(Scan.Corrupt, 0u);
  }
  M.reset();
}

TEST(KvStoreTest, ScanChecksumIsVersionMultisetInvariant) {
  // Two stores built by different op orders but ending in the same
  // (key, version) multiset must report the same scan checksum.
  Runtime RT(kvConfig());
  auto M = RT.attachMutator();
  {
    KvStoreParams P{512, 2, 4};
    KvStore A(*M, P), B(*M, P);
    for (uint64_t K = 0; K < 100; ++K)
      A.put(*M, K);
    for (uint64_t K = 0; K < 50; ++K)
      A.put(*M, K); // versions: 0..49 -> 2, 50..99 -> 1
    for (uint64_t K = 100; K > 0; --K)
      B.put(*M, K - 1);
    for (uint64_t K = 50; K > 0; --K)
      B.put(*M, K - 1);
    KvScanResult SA = A.scanAll(*M), SB = B.scanAll(*M);
    EXPECT_EQ(SA.Live, SB.Live);
    EXPECT_EQ(SA.Checksum, SB.Checksum);
    EXPECT_EQ(SA.Corrupt + SB.Corrupt, 0u);

    // And the checksum actually depends on versions.
    A.put(*M, 99);
    EXPECT_NE(A.scanAll(*M).Checksum, SB.Checksum);
  }
  M.reset();
}

TEST(KvStoreTest, SurvivesRelocatingGcCycles) {
  GcConfig Cfg = kvConfig();
  Cfg.MaxHeapBytes = 32u << 20;
  Cfg.RelocateAllSmallPages = true; // maximum relocation traffic
  Runtime RT(Cfg);
  auto M = RT.attachMutator();
  {
    KvStoreParams P;
    P.Capacity = 8192;
    P.Shards = 4;
    P.ValueWords = 8;
    KvStore Store(*M, P);
    const uint64_t N = 5000;
    for (uint64_t K = 0; K < N; ++K)
      Store.put(*M, K * 17);
    for (int Round = 0; Round < 3; ++Round) {
      M->requestGcAndWait();
      for (uint64_t K = 0; K < N; K += 7)
        ASSERT_EQ(Store.get(*M, K * 17), KvReadStatus::Hit)
            << "round " << Round << " key " << K * 17;
      // Churn some records to give the next cycle garbage + new pages.
      for (uint64_t K = 0; K < N; K += 11)
        Store.put(*M, K * 17);
    }
    KvScanResult Scan = Store.scanAll(*M);
    EXPECT_EQ(Scan.Live, N);
    EXPECT_EQ(Scan.Corrupt, 0u);
    EXPECT_GE(RT.gcStats().cycleCount(), 3u);
  }
  M.reset(); // detach before verifyHeap (it waits for driver idle)
  VerifyResult V = RT.verifyHeap();
  EXPECT_TRUE(V.ok()) << (V.Errors.empty() ? "" : V.Errors.front());
}

TEST(KvStoreTest, ConcurrentReadersWritersWithGc) {
  GcConfig Cfg = kvConfig();
  Cfg.MaxHeapBytes = 32u << 20;
  Runtime RT(Cfg);
  auto M0 = RT.attachMutator();
  {
    KvStoreParams P;
    P.Capacity = 4096;
    P.Shards = 8;
    P.ValueWords = 4;
    KvStore Store(*M0, P);
    const uint64_t Base = 1000; // keys [0, Base) always present
    for (uint64_t K = 0; K < Base; ++K)
      Store.put(*M0, K);

    constexpr int Writers = 2, Readers = 2;
    std::atomic<uint64_t> Corrupt{0}, BaseMisses{0};
    std::atomic<bool> Stop{false};
    std::vector<std::thread> Ts;

    for (int W = 0; W < Writers; ++W)
      Ts.emplace_back([&, W] {
        auto M = RT.attachMutator();
        SplitMix64 Rng(testSeed(0x4B20 + W));
        // Disjoint churn ranges per writer; all update the base range.
        uint64_t Lo = Base + 500 * W, Hi = Lo + 500;
        for (int I = 0; I < 6000 && !Stop.load(); ++I) {
          if (Rng.nextBelow(2)) {
            Store.put(*M, Rng.nextBelow(Base));
          } else {
            uint64_t K = Lo + Rng.nextBelow(Hi - Lo);
            if (Rng.nextBelow(2))
              Store.put(*M, K);
            else
              Store.remove(*M, K);
          }
        }
        M.reset();
      });
    for (int R = 0; R < Readers; ++R)
      Ts.emplace_back([&, R] {
        auto M = RT.attachMutator();
        SplitMix64 Rng(testSeed(0x4B30 + R));
        for (int I = 0; I < 20000 && !Stop.load(); ++I) {
          KvReadStatus S = Store.get(*M, Rng.nextBelow(Base));
          if (S == KvReadStatus::Corrupt)
            Corrupt.fetch_add(1);
          else if (S == KvReadStatus::Miss)
            BaseMisses.fetch_add(1);
        }
        M.reset();
      });

    for (int G = 0; G < 4; ++G)
      M0->requestGcAndWait();
    {
      BlockedScope B(RT.safepoints());
      for (std::thread &T : Ts)
        T.join();
    }
    EXPECT_EQ(Corrupt.load(), 0u) << "torn or stale record observed";
    EXPECT_EQ(BaseMisses.load(), 0u) << "always-present key missed";
    KvScanResult Scan = Store.scanAll(*M0);
    EXPECT_EQ(Scan.Corrupt, 0u);
    EXPECT_GE(Scan.Live, Base);
  }
  M0.reset(); // detach before verifyHeap (it waits for driver idle)
  VerifyResult V = RT.verifyHeap();
  EXPECT_TRUE(V.ok()) << (V.Errors.empty() ? "" : V.Errors.front());
}

TEST(KvStoreTest, WorkloadChecksumIsScheduleInvariant) {
  KvWorkloadParams P;
  P.Records = 2000;
  P.ChurnKeys = 400;
  P.Ops = 20000;
  P.Threads = 4;
  P.Shards = 4;
  P.ValueWords = 4;
  P.ComputeCyclesPerOp = 0;
  P.Seed = testSeed(0x4B40);

  uint64_t First = 0;
  // Round 0/1: identical plain runtimes (different interleavings).
  // Round 2: hotness + relocate-all (different GC schedule entirely).
  for (int Round = 0; Round < 3; ++Round) {
    GcConfig Cfg = kvConfig();
    Cfg.MaxHeapBytes = 32u << 20;
    if (Round == 2) {
      Cfg.Hotness = true;
      Cfg.RelocateAllSmallPages = true;
    }
    Runtime RT(Cfg);
    auto M = RT.attachMutator();
    KvWorkloadResult R = runKvWorkload(*M, P);
    EXPECT_EQ(R.OpsDone, P.Ops);
    EXPECT_EQ(R.ConsistencyFailures, 0u);
    EXPECT_EQ(R.ReadMisses, 0u);
    EXPECT_EQ(R.HeapExhausted, 0u);
    EXPECT_EQ(R.Reads + R.Updates + R.Inserts + R.Removes, R.OpsDone);
    EXPECT_GE(R.LiveRecords, P.Records);
    if (Round == 0)
      First = R.Checksum;
    else
      EXPECT_EQ(R.Checksum, First) << "round " << Round;
    M.reset();
  }
}

TEST(KvStoreTest, WorkloadRegistersMetrics) {
  Runtime RT(kvConfig());
  auto M = RT.attachMutator();
  KvWorkloadParams P;
  P.Records = 500;
  P.ChurnKeys = 100;
  P.Ops = 4000;
  P.Threads = 2;
  P.Shards = 2;
  P.ValueWords = 2;
  P.ComputeCyclesPerOp = 0;
  KvWorkloadResult R = runKvWorkload(*M, P);
  EXPECT_EQ(R.ConsistencyFailures, 0u);
  EXPECT_EQ(RT.metrics().counterValue("kv.ops.read"), R.Reads);
  EXPECT_EQ(RT.metrics().counterValue("kv.ops.update"), R.Updates);
  EXPECT_EQ(RT.metrics().counterValue("kv.ops.insert"), R.Inserts);
  EXPECT_EQ(RT.metrics().counterValue("kv.ops.remove"), R.Removes);
  EXPECT_EQ(RT.metrics().counterValue("kv.read.misses"), 0u);
  EXPECT_EQ(RT.metrics().counterValue("kv.consistency.failures"), 0u);
  Histogram &H = RT.metrics().histogram("kv.op_latency_ns");
  EXPECT_EQ(H.count(), R.OpsDone);
  M.reset();
}
