//===- tests/workloads/ManagedGraphTest.cpp ------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Structural equivalence between the CSR input and its managed-heap
// materialization: degrees, endpoints, edge-object sharing, and survival
// of the whole structure across relocating collections.
//
//===----------------------------------------------------------------------===//

#include "workloads/ManagedGraph.h"

#include "TestSeeds.h"

#include <gtest/gtest.h>

#include <set>

using namespace hcsgc;

namespace {

GcConfig mgConfig() {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 1024 * 1024;
  Cfg.MaxHeapBytes = 48u << 20;
  return Cfg;
}

} // namespace

TEST(ManagedGraphTest, DegreesMatchCsr) {
  CsrGraph Csr = generateWebGraph({300, 2000, 3, 0.6});
  Runtime RT(mgConfig());
  auto M = RT.attachMutator();
  {
    ManagedGraph G(*M, Csr, /*ShuffleSeed=*/test::testSeed(70), false);
    EXPECT_EQ(G.size(), Csr.N);
    Root V(*M), Adj(*M);
    for (uint32_t I = 0; I < Csr.N; ++I) {
      G.node(I, V);
      EXPECT_EQ(M->loadWord(V, NW_Id), I);
      M->loadRef(V, NR_Adj, Adj);
      EXPECT_EQ(M->arrayLength(Adj), Csr.degree(I)) << "node " << I;
    }
  }
  M.reset();
}

TEST(ManagedGraphTest, EdgesMatchCsrNeighborSets) {
  CsrGraph Csr = generateWebGraph({200, 1200, 9, 0.5});
  Runtime RT(mgConfig());
  auto M = RT.attachMutator();
  {
    ManagedGraph G(*M, Csr, 0x5eed, false);
    Root V(*M), Adj(*M), E(*M), W(*M);
    for (uint32_t I = 0; I < Csr.N; ++I) {
      G.node(I, V);
      M->loadRef(V, NR_Adj, Adj);
      std::multiset<uint32_t> FromHeap, FromCsr;
      uint32_t Deg = M->arrayLength(Adj);
      for (uint32_t K = 0; K < Deg; ++K) {
        M->loadElem(Adj, K, E);
        G.farEndpoint(E, I, W);
        FromHeap.insert(static_cast<uint32_t>(M->loadWord(W, NW_Id)));
      }
      for (uint32_t K = Csr.Offsets[I]; K < Csr.Offsets[I + 1]; ++K)
        FromCsr.insert(Csr.Adj[K]);
      ASSERT_EQ(FromHeap, FromCsr) << "node " << I;
    }
  }
  M.reset();
}

TEST(ManagedGraphTest, EdgeObjectsAreShared) {
  // The edge (u,v) must be the SAME object in both adjacency lists, as
  // in JGraphT.
  CsrGraph Csr = generateWebGraph({100, 500, 4, 0.5});
  Runtime RT(mgConfig());
  auto M = RT.attachMutator();
  {
    ManagedGraph G(*M, Csr, 0x5eed, false);
    Root U(*M), V(*M), AdjU(*M), AdjV(*M), EU(*M), EV(*M), W(*M);
    size_t CheckedPairs = 0;
    for (uint32_t I = 0; I < Csr.N && CheckedPairs < 50; ++I) {
      G.node(I, U);
      M->loadRef(U, NR_Adj, AdjU);
      uint32_t DegU = M->arrayLength(AdjU);
      for (uint32_t K = 0; K < DegU && CheckedPairs < 50; ++K) {
        M->loadElem(AdjU, K, EU);
        G.farEndpoint(EU, I, W);
        uint32_t J = static_cast<uint32_t>(M->loadWord(W, NW_Id));
        // Find the same undirected edge from J's side.
        G.node(J, V);
        M->loadRef(V, NR_Adj, AdjV);
        uint32_t DegV = M->arrayLength(AdjV);
        bool FoundShared = false;
        for (uint32_t L = 0; L < DegV; ++L) {
          M->loadElem(AdjV, L, EV);
          if (M->refEquals(EU, EV)) {
            FoundShared = true;
            break;
          }
        }
        EXPECT_TRUE(FoundShared) << "edge " << I << "-" << J;
        ++CheckedPairs;
      }
    }
    EXPECT_GT(CheckedPairs, 0u);
  }
  M.reset();
}

TEST(ManagedGraphTest, EdgeObjectCountMatchesUndirectedEdges) {
  CsrGraph Csr = generateWebGraph({400, 3000, 6, 0.6});
  Runtime RT(mgConfig());
  auto M = RT.attachMutator();
  {
    ManagedGraph G(*M, Csr, 0x5eed, false);
    EXPECT_EQ(G.edgeObjects(), Csr.edgeCount());
  }
  M.reset();
}

TEST(ManagedGraphTest, StructureSurvivesRelocation) {
  CsrGraph Csr = generateWebGraph({300, 2000, 8, 0.6});
  GcConfig Cfg = mgConfig();
  Cfg.RelocateAllSmallPages = true;
  Cfg.LazyRelocate = true;
  Runtime RT(Cfg);
  auto M = RT.attachMutator();
  {
    ManagedGraph G(*M, Csr, 0x5eed, true);
    M->requestGcAndWait();
    M->requestGcAndWait();
    Root V(*M), Adj(*M), E(*M), W(*M);
    uint64_t EndpointSum = 0;
    for (uint32_t I = 0; I < Csr.N; ++I) {
      G.node(I, V);
      ASSERT_EQ(M->loadWord(V, NW_Id), I);
      M->loadRef(V, NR_Adj, Adj);
      ASSERT_EQ(M->arrayLength(Adj), Csr.degree(I));
      uint32_t Deg = M->arrayLength(Adj);
      for (uint32_t K = 0; K < Deg; ++K) {
        M->loadElem(Adj, K, E);
        G.farEndpoint(E, I, W);
        EndpointSum += static_cast<uint64_t>(M->loadWord(W, NW_Id));
      }
    }
    uint64_t CsrSum = 0;
    for (uint32_t T : Csr.Adj)
      CsrSum += T;
    EXPECT_EQ(EndpointSum, CsrSum);
  }
  M.reset();
}

TEST(ManagedGraphTest, UnshuffledBuildIsIdOrdered) {
  // ShuffleSeed 0 keeps allocation in id order — the "good layout"
  // control for locality experiments.
  CsrGraph Csr = generateWebGraph({200, 800, 2, 0.5});
  Runtime RT(mgConfig());
  auto M = RT.attachMutator();
  {
    ManagedGraph G(*M, Csr, /*ShuffleSeed=*/0, false);
    Root A(*M), B(*M);
    size_t Ascending = 0, Total = 0;
    for (uint32_t I = 0; I + 1 < Csr.N; ++I) {
      G.node(I, A);
      G.node(I + 1, B);
      if (oopAddr(B.rawOop()) > oopAddr(A.rawOop()))
        ++Ascending;
      ++Total;
    }
    // Bump allocation in id order: almost all consecutive ids ascend in
    // memory (page switches break a few).
    EXPECT_GT(Ascending, Total * 9 / 10);
  }
  M.reset();
}
