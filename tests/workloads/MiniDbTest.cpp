//===- tests/workloads/MiniDbTest.cpp ------------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/MiniDb.h"

#include "support/Random.h"

#include "TestSeeds.h"

#include <gtest/gtest.h>

#include <map>

using namespace hcsgc;

namespace {

GcConfig dbConfig() {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 1024 * 1024;
  Cfg.MaxHeapBytes = 48u << 20;
  return Cfg;
}

} // namespace

TEST(MiniDbTest, InsertAndLookup) {
  Runtime RT(dbConfig());
  auto M = RT.attachMutator();
  {
    MiniDb Db(*M);
    for (int64_t K = 0; K < 100; ++K)
      Db.insert(K, K * 2);
    EXPECT_EQ(Db.size(), 100u);
    int64_t V = 0;
    for (int64_t K = 0; K < 100; ++K) {
      ASSERT_TRUE(Db.lookup(K, V));
      EXPECT_EQ(V, K * 2);
    }
    EXPECT_FALSE(Db.lookup(1000, V));
    EXPECT_FALSE(Db.lookup(-1, V));
  }
  M.reset();
}

TEST(MiniDbTest, UpdateReplacesRowVersion) {
  Runtime RT(dbConfig());
  auto M = RT.attachMutator();
  {
    MiniDb Db(*M);
    Db.insert(7, 1);
    Db.insert(7, 2);
    Db.insert(7, 3);
    EXPECT_EQ(Db.size(), 1u);
    int64_t V;
    ASSERT_TRUE(Db.lookup(7, V));
    EXPECT_EQ(V, 3);
  }
  M.reset();
}

TEST(MiniDbTest, MatchesStdMapUnderRandomOps) {
  Runtime RT(dbConfig());
  auto M = RT.attachMutator();
  {
    MiniDb Db(*M);
    std::map<int64_t, int64_t> Shadow;
    SplitMix64 Rng(test::testSeed(20));
    for (int Op = 0; Op < 20000; ++Op) {
      int64_t K = static_cast<int64_t>(Rng.nextBelow(3000));
      if (Rng.nextBelow(3) == 0) {
        int64_t V = static_cast<int64_t>(Rng.nextBelow(1 << 20));
        Db.insert(K, V);
        Shadow[K] = V;
      } else {
        int64_t V = 0;
        bool Found = Db.lookup(K, V);
        auto It = Shadow.find(K);
        ASSERT_EQ(Found, It != Shadow.end()) << "key " << K;
        if (Found)
          ASSERT_EQ(V, It->second) << "key " << K;
      }
    }
    EXPECT_EQ(Db.size(), Shadow.size());
  }
  M.reset();
}

TEST(MiniDbTest, ScanMatchesShadow) {
  Runtime RT(dbConfig());
  auto M = RT.attachMutator();
  {
    MiniDb Db(*M);
    std::map<int64_t, int64_t> Shadow;
    SplitMix64 Rng(test::testSeed(21));
    for (int I = 0; I < 5000; ++I) {
      int64_t K = static_cast<int64_t>(Rng.nextBelow(100000));
      int64_t V = static_cast<int64_t>(Rng.nextBelow(1000));
      Db.insert(K, V);
      Shadow[K] = V;
    }
    for (int Trial = 0; Trial < 200; ++Trial) {
      int64_t From = static_cast<int64_t>(Rng.nextBelow(100000));
      unsigned Count = 1 + static_cast<unsigned>(Rng.nextBelow(30));
      uint64_t Got = Db.scan(From, Count);
      uint64_t Want = 0;
      unsigned Taken = 0;
      for (auto It = Shadow.lower_bound(From);
           It != Shadow.end() && Taken < Count; ++It, ++Taken)
        Want += static_cast<uint64_t>(It->second);
      ASSERT_EQ(Got, Want) << "from " << From << " count " << Count;
    }
  }
  M.reset();
}

TEST(MiniDbTest, TreeGrowsInHeight) {
  Runtime RT(dbConfig());
  auto M = RT.attachMutator();
  {
    MiniDb Db(*M);
    EXPECT_EQ(Db.height(), 1u);
    for (int64_t K = 0; K < 5000; ++K)
      Db.insert(K, K);
    EXPECT_GE(Db.height(), 3u);
    int64_t V;
    EXPECT_TRUE(Db.lookup(0, V));
    EXPECT_TRUE(Db.lookup(4999, V));
  }
  M.reset();
}

TEST(MiniDbTest, SurvivesGcWithFullIntegrity) {
  GcConfig Cfg = dbConfig();
  Cfg.RelocateAllSmallPages = true;
  Cfg.LazyRelocate = true;
  Runtime RT(Cfg);
  auto M = RT.attachMutator();
  {
    MiniDb Db(*M);
    for (int64_t K = 0; K < 3000; ++K)
      Db.insert(K * 3, K);
    M->requestGcAndWait();
    M->requestGcAndWait();
    int64_t V;
    for (int64_t K = 0; K < 3000; ++K) {
      ASSERT_TRUE(Db.lookup(K * 3, V));
      ASSERT_EQ(V, K);
    }
    EXPECT_FALSE(Db.lookup(1, V));
  }
  M.reset();
}

TEST(MiniDbTest, BenchmarkHarnessChecksumStable) {
  MiniDbParams P;
  P.Rows = 3000;
  P.Ops = 4000;
  uint64_t First = 0;
  for (int Round = 0; Round < 2; ++Round) {
    Runtime RT(dbConfig());
    auto M = RT.attachMutator();
    MiniDbResult R = runMiniDb(*M, P);
    EXPECT_EQ(R.OpsDone, P.Ops);
    EXPECT_GT(R.RowCount, 0u);
    if (Round == 0)
      First = R.QueryChecksum;
    else
      EXPECT_EQ(R.QueryChecksum, First);
    M.reset();
  }
}
