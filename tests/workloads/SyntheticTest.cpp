//===- tests/workloads/SyntheticTest.cpp ---------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Synthetic.h"

#include "harness/Config.h"

#include <gtest/gtest.h>

using namespace hcsgc;

namespace {

GcConfig synthConfig() {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 1024 * 1024;
  Cfg.MaxHeapBytes = 16u << 20;
  return Cfg;
}

SyntheticParams tinyParams() {
  SyntheticParams P;
  P.ArraySize = 5000;
  P.InnerIters = 4000;
  P.OuterIters = 3;
  return P;
}

} // namespace

TEST(SyntheticTest, ChecksumMatchesModel) {
  Runtime RT(synthConfig());
  auto M = RT.attachMutator();
  SyntheticParams P = tinyParams();
  SyntheticResult R = runSynthetic(*M, P);
  EXPECT_EQ(R.Checksum, expectedSyntheticChecksum(P));
  EXPECT_EQ(R.Ops, P.InnerIters * P.OuterIters);
  M.reset();
}

TEST(SyntheticTest, ChecksumStableAcrossConfigs) {
  SyntheticParams P = tinyParams();
  uint64_t Expected = expectedSyntheticChecksum(P);
  for (int Id : {0, 4, 7, 16, 18}) {
    GcConfig Cfg = applyKnobs(synthConfig(), table2Config(Id));
    Cfg.MaxHeapBytes = 8u << 20; // force GC cycles during the run
    Cfg.TriggerHysteresisFraction = 0.02;
    Runtime RT(Cfg);
    auto M = RT.attachMutator();
    SyntheticResult R = runSynthetic(*M, P);
    EXPECT_EQ(R.Checksum, Expected) << "config " << Id;
    M.reset();
  }
}

TEST(SyntheticTest, MultiPhaseChecksum) {
  Runtime RT(synthConfig());
  auto M = RT.attachMutator();
  SyntheticParams P = tinyParams();
  P.Phases = 3;
  SyntheticResult R = runSynthetic(*M, P);
  EXPECT_EQ(R.Checksum, expectedSyntheticChecksum(P));
  M.reset();
}

TEST(SyntheticTest, ColdArrayVariantRuns) {
  Runtime RT(synthConfig());
  auto M = RT.attachMutator();
  SyntheticParams P = tinyParams();
  P.ColdArraySize = P.ArraySize * 4;
  SyntheticResult R = runSynthetic(*M, P);
  EXPECT_EQ(R.Checksum, expectedSyntheticChecksum(P));
  M.reset();
}

TEST(SyntheticTest, GarbageDisabled) {
  Runtime RT(synthConfig());
  auto M = RT.attachMutator();
  SyntheticParams P = tinyParams();
  P.GarbageEvery = 0;
  SyntheticResult R = runSynthetic(*M, P);
  EXPECT_EQ(R.Checksum, expectedSyntheticChecksum(P));
  M.reset();
}
