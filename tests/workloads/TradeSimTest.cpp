//===- tests/workloads/TradeSimTest.cpp ----------------------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/TradeSim.h"

#include "harness/Config.h"

#include <gtest/gtest.h>

using namespace hcsgc;

namespace {

GcConfig tsConfig() {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 1024 * 1024;
  Cfg.MaxHeapBytes = 24u << 20;
  return Cfg;
}

TradeSimParams tinyParams() {
  TradeSimParams P;
  P.Accounts = 200;
  P.Instruments = 20;
  P.Transactions = 5000;
  return P;
}

} // namespace

TEST(TradeSimTest, Deterministic) {
  TradeSimParams P = tinyParams();
  uint64_t First = 0;
  for (int Round = 0; Round < 2; ++Round) {
    Runtime RT(tsConfig());
    auto M = RT.attachMutator();
    TradeSimResult R = runTradeSim(*M, P);
    EXPECT_EQ(R.TradesExecuted, P.Transactions);
    if (Round == 0)
      First = R.BalanceChecksum;
    else
      EXPECT_EQ(R.BalanceChecksum, First);
    M.reset();
  }
}

TEST(TradeSimTest, ChecksumStableUnderAggressiveGc) {
  TradeSimParams P = tinyParams();
  Runtime Base(tsConfig());
  uint64_t Expected;
  {
    auto M = Base.attachMutator();
    Expected = runTradeSim(*M, P).BalanceChecksum;
    M.reset();
  }
  for (int Id : {4, 16, 18}) {
    GcConfig Cfg = applyKnobs(tsConfig(), table2Config(Id));
    Cfg.MaxHeapBytes = 2u << 20; // force cycles mid-run
    Cfg.TriggerFraction = 0.5;
    Cfg.TriggerHysteresisFraction = 0.02;
    Runtime RT(Cfg);
    auto M = RT.attachMutator();
    TradeSimResult R = runTradeSim(*M, P);
    EXPECT_EQ(R.BalanceChecksum, Expected) << "config " << Id;
    M.reset();
    RT.driver().shutdown(); // publish any deferred (lazy) cycle record
    EXPECT_GE(RT.gcStats().cycleCount(), 1u);
  }
}

TEST(TradeSimTest, MostAllocationIsShortLived) {
  // The tradebeans regime: heavy allocation with a small retained core.
  TradeSimParams P = tinyParams();
  P.Transactions = 20000;
  GcConfig Cfg = tsConfig();
  Cfg.MaxHeapBytes = 2u << 20;
  Cfg.TriggerFraction = 0.5;
  Cfg.TriggerHysteresisFraction = 0.02;
  Runtime RT(Cfg);
  auto M = RT.attachMutator();
  TradeSimResult R = runTradeSim(*M, P);
  EXPECT_GT(R.TradesExecuted, 0u);
  M.reset();
  // Survivor set stays small relative to total allocation.
  EXPECT_LT(RT.usedBytes(), RT.maxHeapBytes());
  EXPECT_GE(RT.gcStats().cycleCount(), 2u);
}
