#!/usr/bin/env python3
"""Compare a bench_alloc_scaling JSON report against a committed baseline.

Closes the ROADMAP item "CI uploads BENCH_alloc_scaling.json per run;
nothing diffs them yet": the CI smoke job now runs

    tools/bench_diff.py --current BENCH_alloc_scaling.json \
        --baseline bench/baselines/BENCH_alloc_scaling.json

and fails when throughput at a guarded mutator count drops more than
the tolerance (default 10%) below the baseline. Guarded points:

  * 1 mutator  — the single-threaded fast path. A drop here means a
    lock or slow path crept onto the TLAB bump/refill tiers.
  * 8 mutators — the contention story. A drop here means the sharded /
    lock-free allocation stack regressed under parallel load.

Only *drops* fail: the committed baseline is a floor, not a fingerprint,
so runs on faster machines pass trivially and the gate only catches
regressions relative to the hardware that produced the baseline (CI
refreshes it whenever an intentional performance change lands — rerun
the sweep and commit the new JSON next to the old one).

A baseline captured on a different core count (or one so old it never
recorded a core count while the current run did) is not comparable:
scaling-curve points measure the machine as much as the code, and a
stale low-core baseline would hide multicore regressions behind a
trivially-cleared floor. Such comparisons are refused: every guarded
point is warned about and skipped, and the script exits 0 — unless
--strict is given, which turns the refusal into a failure so CI can
demand a refreshed baseline.

Exit codes: 0 ok, 1 regression (or refused comparison under --strict),
2 usage/IO error.
"""

import argparse
import json
import sys


GUARDED_MUTATORS = (1, 8)


def load_points(path):
    """Returns ({mutators: throughput_mops}, cores) from a sweep report.

    ``cores`` is the runner's core count the sweep recorded, or None for
    reports written before the field existed.
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.stderr.write(f"bench_diff: cannot read {path}: {e}\n")
        sys.exit(2)
    points = doc.get("points", [])
    if not points:
        sys.stderr.write(f"bench_diff: {path} has no points\n")
        sys.exit(2)
    cores = doc.get("cores")
    cores = int(cores) if cores is not None else None
    return ({int(p["mutators"]): float(p["throughput_mops"])
             for p in points}, cores)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--current", required=True,
                    help="JSON produced by this run's sweep")
    ap.add_argument("--baseline", required=True,
                    help="committed baseline JSON")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional drop (default 0.10 = 10%%)")
    ap.add_argument("--strict", action="store_true",
                    help="fail (exit 1) instead of warn-and-skip when "
                         "the baseline's core count does not match")
    args = ap.parse_args()

    cur, cur_cores = load_points(args.current)
    base, base_cores = load_points(args.baseline)

    # A baseline from a different core count is not comparable — the
    # guarded floors measure the hardware as much as the code. None is
    # comparable only to None (two pre-field legacy reports); a current
    # run that records cores against a baseline that never did means the
    # baseline is stale and must be refreshed.
    def fmt_cores(n):
        return str(n) if n is not None else "unknown"
    print(f"  cores: current {fmt_cores(cur_cores)}, "
          f"baseline {fmt_cores(base_cores)}")
    cores_comparable = cur_cores == base_cores

    failed = False
    if not cores_comparable:
        for m in GUARDED_MUTATORS:
            sys.stderr.write(
                f"bench_diff: WARNING: skipping the {m}-mutator guard — "
                f"baseline cores ({fmt_cores(base_cores)}) != current "
                f"cores ({fmt_cores(cur_cores)}); refresh "
                f"bench/baselines/ on this machine\n")
        if args.strict:
            sys.stderr.write(
                "bench_diff: --strict: refusing to compare against a "
                "baseline from a different core count\n")
            sys.exit(1)
        print("bench_diff: comparison skipped (core-count mismatch)")
        return

    for m in GUARDED_MUTATORS:
        if m not in base:
            # The baseline predates this guarded point (e.g. an old
            # committed sweep ran fewer mutator counts). That is not the
            # current run's fault: warn and skip instead of failing, so
            # stale baselines degrade the gate rather than break CI.
            sys.stderr.write(
                f"bench_diff: WARNING: baseline lacks the {m}-mutator "
                f"point; skipping this guard (refresh the baseline)\n")
            continue
        if m not in cur:
            sys.stderr.write(
                f"bench_diff: current run is missing the {m}-mutator "
                f"point the baseline guards\n")
            failed = True
            continue
        floor = base[m] * (1.0 - args.tolerance)
        delta = (cur[m] - base[m]) / base[m] * 100.0
        verdict = "OK" if cur[m] >= floor else "REGRESSION"
        print(f"  {m:2d} mutators: {cur[m]:8.2f} Mops/s vs baseline "
              f"{base[m]:8.2f} ({delta:+6.1f}%, floor {floor:8.2f}) "
              f"{verdict}")
        if cur[m] < floor:
            failed = True

    if failed:
        sys.stderr.write(
            f"bench_diff: throughput dropped more than "
            f"{args.tolerance * 100:.0f}% below the committed baseline\n")
        sys.exit(1)

    # Informational ratio table over every point both runs share — the
    # guarded points gate, the rest give the scaling-curve context.
    common = sorted(set(cur) & set(base))
    if common:
        print("\n  per-point ratios (current / baseline):")
        print(f"  {'mutators':>8} {'current':>10} {'baseline':>10} "
              f"{'ratio':>7}")
        for m in common:
            ratio = cur[m] / base[m] if base[m] else float("inf")
            mark = " *" if m in GUARDED_MUTATORS else ""
            print(f"  {m:8d} {cur[m]:10.2f} {base[m]:10.2f} "
                  f"{ratio:7.3f}{mark}")
        print("  (* = guarded point)")
    print("bench_diff: no regression")


if __name__ == "__main__":
    main()
