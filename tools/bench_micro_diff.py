#!/usr/bin/env python3
"""Compare a google-benchmark JSON report against a committed baseline.

Companion to bench_diff.py for the micro-bench smoke job: the CI job
runs

    ./build/bench/bench_micro_gc --benchmark_out=BENCH_micro_gc.json \
        --benchmark_out_format=json
    tools/bench_micro_diff.py --current BENCH_micro_gc.json \
        --baseline bench/baselines/BENCH_micro_gc.json

and fails when any benchmark both reports run gets slower (cpu_time)
by more than the tolerance. Micro timings are noisy, so the default
tolerance is deliberately loose (50%): the gate exists to catch
order-of-magnitude mistakes — a virtual dispatch reappearing on the
probe fast path, a word walk degrading to per-bit — not single-digit
drift.

Same comparability rule as bench_diff.py: a baseline captured on a
different CPU count (google-benchmark's context.num_cpus) is refused —
every shared benchmark is warned about and skipped, exit 0 unless
--strict. Benchmarks present on only one side are reported but never
fail the run (suites grow).

Exit codes: 0 ok, 1 regression (or refused comparison under --strict),
2 usage/IO error.
"""

import argparse
import json
import sys


def load_report(path):
    """Returns ({name: cpu_time_ns}, num_cpus) from a gbench JSON."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.stderr.write(f"bench_micro_diff: cannot read {path}: {e}\n")
        sys.exit(2)
    times = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        # Normalize to nanoseconds so ms-unit benchmarks compare too.
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None or "cpu_time" not in b:
            continue
        times[b["name"]] = float(b["cpu_time"]) * scale
    if not times:
        sys.stderr.write(f"bench_micro_diff: {path} has no benchmarks\n")
        sys.exit(2)
    cpus = doc.get("context", {}).get("num_cpus")
    return times, (int(cpus) if cpus is not None else None)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--current", required=True,
                    help="JSON produced by this run (--benchmark_out)")
    ap.add_argument("--baseline", required=True,
                    help="committed baseline JSON")
    ap.add_argument("--tolerance", type=float, default=0.50,
                    help="allowed fractional slowdown "
                         "(default 0.50 = 50%%)")
    ap.add_argument("--strict", action="store_true",
                    help="fail (exit 1) instead of warn-and-skip when "
                         "the baseline's CPU count does not match")
    args = ap.parse_args()

    cur, cur_cpus = load_report(args.current)
    base, base_cpus = load_report(args.baseline)
    common = sorted(set(cur) & set(base))

    def fmt(n):
        return str(n) if n is not None else "unknown"
    print(f"  cpus: current {fmt(cur_cpus)}, baseline {fmt(base_cpus)}")
    if cur_cpus != base_cpus:
        for name in common:
            sys.stderr.write(
                f"bench_micro_diff: WARNING: skipping {name} — baseline "
                f"cpus ({fmt(base_cpus)}) != current cpus "
                f"({fmt(cur_cpus)}); refresh bench/baselines/ on this "
                f"machine\n")
        if args.strict:
            sys.stderr.write(
                "bench_micro_diff: --strict: refusing to compare "
                "against a baseline from a different CPU count\n")
            sys.exit(1)
        print("bench_micro_diff: comparison skipped (CPU-count "
              "mismatch)")
        return

    for name in sorted(set(base) - set(cur)):
        sys.stderr.write(f"bench_micro_diff: note: baseline-only "
                         f"benchmark {name} (renamed or removed?)\n")
    for name in sorted(set(cur) - set(base)):
        print(f"  {name}: new benchmark, no baseline yet")

    failed = False
    for name in common:
        ceiling = base[name] * (1.0 + args.tolerance)
        ratio = cur[name] / base[name] if base[name] else float("inf")
        verdict = "OK" if cur[name] <= ceiling else "REGRESSION"
        print(f"  {name}: {cur[name]:12.1f} ns vs baseline "
              f"{base[name]:12.1f} (x{ratio:5.2f}) {verdict}")
        if cur[name] > ceiling:
            failed = True

    if failed:
        sys.stderr.write(
            f"bench_micro_diff: a benchmark slowed down more than "
            f"{args.tolerance * 100:.0f}% vs the committed baseline\n")
        sys.exit(1)
    print("bench_micro_diff: no regression")


if __name__ == "__main__":
    main()
