//===- tools/gc_torture.cpp - Seeded fault-injection torture runner ----------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs seeded mutator/GC schedules under tiny-heap geometries with the
/// fault-point registry armed: TLAB refills and page allocations are
/// denied probabilistically, relocation-target allocation is pushed onto
/// the reserve pool, and phase/safepoint boundaries are stretched by
/// bounded random delays. Every object carries a self-validating
/// checksum, heap exhaustion must surface as the typed error (never an
/// abort), and each seed ends with a full heap verification.
///
/// Usage:
///   gc_torture [--seeds=32] [--seed-base=N] [--ops=30000] [--threads=4]
///              [--kv-seeds=0] [--trace-dir=DIR] [--verbose]
///
/// --kv-seeds=N additionally runs N seeds of the YCSB-style KV workload
/// (src/workloads/KvWorkload.h) under the same fault plans and seed-bit
/// configs: self-validating records, concurrent read/update/churn mix,
/// zero consistency violations required.
///
/// Exit code 0 iff every seed completes with an intact heap.
///
//===----------------------------------------------------------------------===//

#include "inject/FaultInject.h"
#include "runtime/Runtime.h"
#include "support/ArgParse.h"
#include "support/Random.h"
#include "workloads/KvWorkload.h"

#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace hcsgc;

namespace {

struct Options {
  uint64_t Seeds = 32;
  uint64_t KvSeeds = 0;
  uint64_t SeedBase = 0xC0FFEE5EEDull;
  uint64_t OpsPerThread = 30000;
  unsigned Threads = 4;
  std::string TraceDir;
  bool Verbose = false;
};

/// SplitMix64 finalizer used to derive checksums and per-seed streams.
uint64_t mix64(uint64_t Z) {
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

/// Classes shared by every torture thread (registered once per runtime).
struct TortureClasses {
  ClassId Small;  ///< 0 refs, 24-byte payload.
  ClassId Node;   ///< 2 refs, 16-byte payload (graph edges).
  ClassId Medium; ///< 0 refs, payload sized for the medium class.
  ClassId Large;  ///< 0 refs, payload sized for a large page.
};

/// Stamps the self-validating checksum: payload word 0 is a tag, word 1
/// its SplitMix64 image. Any misdirected relocation, lost update or
/// premature reclaim shows up as a mismatch.
void stampObject(Mutator &M, Root &Obj, uint64_t Tag) {
  M.storeWord(Obj, 0, static_cast<int64_t>(Tag));
  M.storeWord(Obj, 1, static_cast<int64_t>(mix64(Tag)));
}

bool validateObject(Mutator &M, Root &Obj) {
  uint64_t Tag = static_cast<uint64_t>(M.loadWord(Obj, 0));
  uint64_t Img = static_cast<uint64_t>(M.loadWord(Obj, 1));
  return Img == mix64(Tag);
}

struct ThreadResult {
  uint64_t Ops = 0;
  uint64_t Exhausted = 0;
  uint64_t Validated = 0;
  std::string Error;
};

constexpr uint32_t OwnSlots = 192;
constexpr uint32_t SharedSlots = 128;

void tortureThread(Runtime &RT, const TortureClasses &Cls,
                   GlobalRoot *Shared, uint64_t Seed, uint64_t Ops,
                   ThreadResult &Res) {
  auto M = RT.attachMutator();
  SplitMix64 Rng(Seed);
  Root Arr(*M), SharedArr(*M), Tmp(*M), Ref(*M);

  // Own array: this thread's private root set. On the tiniest
  // geometries a starting thread can lose the allocation race to its
  // churning siblings through a whole stall budget — the typed error is
  // correct there, so keep retrying boundedly (each attempt already
  // stalls through GC-assisted backoff internally).
  bool Started = false;
  for (unsigned Try = 0; Try < 16 && !Started; ++Try) {
    try {
      M->allocateRefArray(Arr, OwnSlots);
      Started = true;
    } catch (const HeapExhaustedError &) {
      ++Res.Exhausted;
    }
  }
  if (!Started) {
    Res.Error = "startup allocation failed 16 times";
    return;
  }

  // Drops references so a later allocation can succeed; exercised after
  // every HeapExhausted to prove the error is recoverable.
  auto Relieve = [&] {
    for (uint32_t I = 0; I < OwnSlots; I += 2)
      M->storeElemNull(Arr, I);
  };

  for (uint64_t Op = 0; Op < Ops && Res.Error.empty(); ++Op) {
    uint64_t Dice = Rng.nextBelow(100);
    uint64_t Tag = (Seed << 20) ^ Op;
    try {
      if (Dice < 40) {
        // Small validated object into a random own slot.
        M->allocate(Tmp, Cls.Small);
        stampObject(*M, Tmp, Tag);
        M->storeElem(Arr, static_cast<uint32_t>(Rng.nextBelow(OwnSlots)),
                     Tmp);
      } else if (Dice < 50) {
        // Graph node: validated payload plus two edges into the own
        // array, so marking and relocation chase real pointers.
        M->allocate(Tmp, Cls.Node);
        stampObject(*M, Tmp, Tag);
        for (uint32_t E = 0; E < 2; ++E) {
          M->loadElem(Arr, static_cast<uint32_t>(Rng.nextBelow(OwnSlots)),
                      Ref);
          if (!Ref.isNull())
            M->storeRef(Tmp, E, Ref);
        }
        M->storeElem(Arr, static_cast<uint32_t>(Rng.nextBelow(OwnSlots)),
                     Tmp);
      } else if (Dice < 58) {
        // Publish to / read from the cross-thread shared array.
        M->loadGlobal(*Shared, SharedArr);
        uint32_t Idx = static_cast<uint32_t>(Rng.nextBelow(SharedSlots));
        if (Dice < 54) {
          M->allocate(Tmp, Cls.Small);
          stampObject(*M, Tmp, Tag);
          M->storeElem(SharedArr, Idx, Tmp);
        } else {
          M->loadElem(SharedArr, Idx, Tmp);
          if (!Tmp.isNull()) {
            ++Res.Validated;
            if (!validateObject(*M, Tmp))
              Res.Error = "shared-slot checksum mismatch";
          }
        }
      } else if (Dice < 72) {
        // Validate a random own slot.
        M->loadElem(Arr, static_cast<uint32_t>(Rng.nextBelow(OwnSlots)),
                    Tmp);
        if (!Tmp.isNull()) {
          ++Res.Validated;
          if (!validateObject(*M, Tmp))
            Res.Error = "own-slot checksum mismatch";
        }
      } else if (Dice < 82) {
        // Make garbage.
        M->storeElemNull(Arr,
                         static_cast<uint32_t>(Rng.nextBelow(OwnSlots)));
      } else if (Dice < 88) {
        // Medium object (per-thread medium TLAB path).
        M->allocate(Tmp, Cls.Medium);
        stampObject(*M, Tmp, Tag);
        M->storeElem(Arr, static_cast<uint32_t>(Rng.nextBelow(OwnSlots)),
                     Tmp);
      } else if (Dice < 90) {
        // Large object (dedicated page path).
        M->allocate(Tmp, Cls.Large);
        stampObject(*M, Tmp, Tag);
        M->storeElem(Arr, static_cast<uint32_t>(Rng.nextBelow(OwnSlots)),
                     Tmp);
      } else if (Dice < 95) {
        // Non-throwing API coverage.
        if (M->tryAllocate(Tmp, Cls.Small) == AllocStatus::HeapExhausted) {
          ++Res.Exhausted;
          Relieve();
        } else {
          stampObject(*M, Tmp, Tag);
          M->storeElem(Arr,
                       static_cast<uint32_t>(Rng.nextBelow(OwnSlots)),
                       Tmp);
        }
      } else {
        M->simulateWork(50);
        M->poll();
      }
    } catch (const HeapExhaustedError &) {
      // The typed error is the contract under test: recover by dropping
      // references and keep going.
      ++Res.Exhausted;
      Relieve();
    }
    ++Res.Ops;
  }
}

GcConfig configForSeed(uint64_t Bits, const Options &Opt) {
  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 64 * 1024;
  Cfg.Geometry.MediumPageSize = 512 * 1024;
  Cfg.MaxHeapBytes = (size_t(8) + 4 * (Bits % 3)) << 20; // 8/12/16 MiB
  // Half the seeds run with a tight reservation (2x instead of the 3x
  // default) so quarantine pressure reaches the relocation reserve.
  if (Bits & 1)
    Cfg.ReservedBytes = 2 * Cfg.MaxHeapBytes;
  Cfg.Hotness = (Bits >> 1) & 1;
  Cfg.ColdPage = Cfg.Hotness && ((Bits >> 2) & 1);
  Cfg.ColdConfidence = Cfg.Hotness ? 0.5 : 0.0;
  Cfg.RelocateAllSmallPages = (Bits >> 3) & 1;
  Cfg.LazyRelocate = (Bits >> 4) & 1;
  Cfg.GcWorkers = 1 + ((Bits >> 5) & 1);
  Cfg.Temperature = Cfg.Hotness && ((Bits >> 6) & 1);
  if (Cfg.Temperature && Cfg.ColdPage && ((Bits >> 7) & 1))
    Cfg.ColdReclaim = ColdReclaimMode::Simulate;
  Cfg.SiteProfiling = Cfg.Hotness && ((Bits >> 8) & 1);
  // Half the profiling seeds flip routes after only two cycles, so
  // pretenured TLABs appear while the fault plan is still denying
  // refills.
  if (Cfg.SiteProfiling && ((Bits >> 9) & 1))
    Cfg.SiteProfileCycles = 2;
  Cfg.TriggerFraction = 0.6;
  Cfg.RelocReservePages = 4;
  Cfg.TraceEnabled = !Opt.TraceDir.empty();
  return Cfg;
}

FaultPlan planForSeed(uint64_t Seed) {
  FaultPlan Plan(Seed);
  Plan.set(FailPoint::TlabRefill, {0.05, 0, UINT64_MAX, 0});
  Plan.set(FailPoint::PageAlloc, {0.003, 0, UINT64_MAX, 0});
  Plan.set(FailPoint::RelocTargetAlloc, {0.02, 0, UINT64_MAX, 0});
  Plan.set(FailPoint::PhaseDelay, {0.25, 0, UINT64_MAX, 300});
  Plan.set(FailPoint::SafepointDelay, {0.25, 0, UINT64_MAX, 150});
  return Plan;
}

bool runSeed(uint64_t Index, const Options &Opt) {
  uint64_t Seed = mix64(Opt.SeedBase + Index);
  GcConfig Cfg = configForSeed(Seed, Opt);
  Runtime RT(Cfg);

  TortureClasses Cls;
  Cls.Small = RT.registerClass("torture.Small", 0, 24);
  Cls.Node = RT.registerClass("torture.Node", 2, 16);
  Cls.Medium = RT.registerClass(
      "torture.Medium", 0,
      static_cast<uint32_t>(Cfg.Geometry.smallObjectMax() + 4096));
  Cls.Large = RT.registerClass(
      "torture.Large", 0,
      static_cast<uint32_t>(Cfg.Geometry.mediumObjectMax() + 8192));

  GlobalRoot *Shared = RT.createGlobalRoot();
  {
    auto M = RT.attachMutator();
    Root Arr(*M);
    M->allocateRefArray(Arr, SharedSlots);
    M->storeGlobal(*Shared, Arr);
  }

  std::vector<ThreadResult> Results(Opt.Threads);
  {
    ScopedFaultPlan Armed(planForSeed(Seed));
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T < Opt.Threads; ++T)
      Threads.emplace_back([&, T] {
        tortureThread(RT, Cls, Shared, Seed ^ mix64(T + 1),
                      Opt.OpsPerThread, Results[T]);
      });
    for (std::thread &T : Threads)
      T.join();
  } // disarm before verification

  ThreadResult Sum;
  bool Failed = false;
  for (const ThreadResult &R : Results) {
    Sum.Ops += R.Ops;
    Sum.Exhausted += R.Exhausted;
    Sum.Validated += R.Validated;
    if (!R.Error.empty()) {
      Failed = true;
      std::fprintf(stderr, "[torture] seed=%" PRIu64 " FAILED: %s\n",
                   Index, R.Error.c_str());
    }
  }

  VerifyResult V = RT.verifyHeap();
  if (!V.ok()) {
    Failed = true;
    for (const std::string &E : V.Errors)
      std::fprintf(stderr, "[torture] seed=%" PRIu64 " verifier: %s\n",
                   Index, E.c_str());
  }

  FaultRegistry &FR = FaultRegistry::instance();
  if (Opt.Verbose || Failed)
    std::fprintf(
        stderr,
        "[torture] seed=%" PRIu64 " (0x%" PRIx64 ") heap=%zuM lazy=%d "
        "hot=%d ops=%" PRIu64 " exhausted=%" PRIu64 " validated=%" PRIu64
        " reserve_pages=%" PRIu64 " faults{tlab=%" PRIu64 " page=%" PRIu64
        " reloc=%" PRIu64 "} objects=%" PRIu64 " %s\n",
        Index, Seed, Cfg.MaxHeapBytes >> 20, Cfg.LazyRelocate ? 1 : 0,
        Cfg.Hotness ? 1 : 0, Sum.Ops, Sum.Exhausted, Sum.Validated,
        RT.heap().allocator().relocReservePagesUsed(),
        FR.fires(FailPoint::TlabRefill), FR.fires(FailPoint::PageAlloc),
        FR.fires(FailPoint::RelocTargetAlloc), V.ObjectsVisited,
        Failed ? "FAIL" : "ok");

  if (Failed && !Opt.TraceDir.empty()) {
    std::string Path =
        Opt.TraceDir + "/torture-seed-" + std::to_string(Index) + ".json";
    if (RT.dumpTrace(Path))
      std::fprintf(stderr, "[torture] trace dumped to %s\n", Path.c_str());
  }
  return !Failed;
}

/// One KV-workload seed under the same fault plan: the managed KV store
/// replaces the raw object soup, so the denied refills and stretched
/// windows hit a lock-free reader / sharded-writer index instead.
/// Committed records must never be lost or corrupted.
bool runKvSeed(uint64_t Index, const Options &Opt) {
  uint64_t Seed = mix64(Opt.SeedBase + 0x4B56ull * (Index + 1));
  GcConfig Cfg = configForSeed(Seed, Opt);
  // Headroom over the KV live set (~0.5 MiB): the load phase commits
  // base records unconditionally, so genuine exhaustion there would be
  // a test-geometry artifact rather than a collector bug.
  Cfg.MaxHeapBytes += size_t(8) << 20;

  Runtime RT(Cfg);
  auto M = RT.attachMutator();

  KvWorkloadParams P;
  P.Records = 2500;
  P.ChurnKeys = 500;
  P.Ops = Opt.OpsPerThread * Opt.Threads;
  P.Threads = Opt.Threads;
  P.Shards = 4;
  P.ValueWords = 4;
  P.ReadPct = 70;
  P.UpdatePct = 15;
  P.ComputeCyclesPerOp = 0;
  P.Seed = Seed;

  bool Failed = false;
  KvWorkloadResult R;
  {
    ScopedFaultPlan Armed(planForSeed(Seed));
    try {
      R = runKvWorkload(*M, P);
    } catch (const std::exception &E) {
      std::fprintf(stderr, "[torture-kv] seed=%" PRIu64 " FAILED: %s\n",
                   Index, E.what());
      Failed = true;
    }
  } // disarm before verification

  if (!Failed && (R.ConsistencyFailures || R.ReadMisses)) {
    Failed = true;
    std::fprintf(stderr,
                 "[torture-kv] seed=%" PRIu64
                 " FAILED: failures=%" PRIu64 " misses=%" PRIu64 "\n",
                 Index, R.ConsistencyFailures, R.ReadMisses);
  }

  M.reset(); // detach before verifyHeap (it waits for driver idle)
  VerifyResult V = RT.verifyHeap();
  if (!V.ok()) {
    Failed = true;
    for (const std::string &E : V.Errors)
      std::fprintf(stderr, "[torture-kv] seed=%" PRIu64 " verifier: %s\n",
                   Index, E.c_str());
  }

  if (Opt.Verbose || Failed)
    std::fprintf(stderr,
                 "[torture-kv] seed=%" PRIu64 " (0x%" PRIx64
                 ") heap=%zuM ops=%" PRIu64 " exhausted=%" PRIu64
                 " live=%" PRIu64 " checksum=0x%" PRIx64 " %s\n",
                 Index, Seed, Cfg.MaxHeapBytes >> 20, R.OpsDone,
                 R.HeapExhausted, R.LiveRecords, R.Checksum,
                 Failed ? "FAIL" : "ok");
  return !Failed;
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParse Args(Argc, Argv);
  Options Opt;
  Opt.Seeds = static_cast<uint64_t>(Args.getInt("seeds", 32));
  Opt.KvSeeds = static_cast<uint64_t>(Args.getInt("kv-seeds", 0));
  Opt.SeedBase = static_cast<uint64_t>(
      Args.getInt("seed-base", static_cast<int64_t>(Opt.SeedBase)));
  Opt.OpsPerThread = static_cast<uint64_t>(Args.getInt("ops", 30000));
  Opt.Threads =
      static_cast<unsigned>(Args.getInt("threads", 4));
  Opt.TraceDir = Args.getString("trace-dir", "");
  Opt.Verbose = Args.getBool("verbose", false);

  uint64_t Failures = 0;
  for (uint64_t I = 0; I < Opt.Seeds; ++I)
    if (!runSeed(I, Opt))
      ++Failures;
  for (uint64_t I = 0; I < Opt.KvSeeds; ++I)
    if (!runKvSeed(I, Opt))
      ++Failures;

  std::fprintf(stderr, "[torture] %" PRIu64 "/%" PRIu64 " seeds clean\n",
               Opt.Seeds + Opt.KvSeeds - Failures, Opt.Seeds + Opt.KvSeeds);
  return Failures ? 1 : 0;
}
