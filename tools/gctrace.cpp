//===- tools/gctrace.cpp - GC trace file summarizer --------------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// Loads a Chrome trace_event JSON file produced by Runtime::dumpTrace (or
// the trace exporter directly) and prints a per-cycle summary: pause
// durations, EC selection decisions, hotness flags and relocation
// attribution. The same file loads in chrome://tracing or Perfetto for a
// visual timeline; this tool answers the quantitative questions.
//
//   $ gctrace trace.json              # per-cycle summary
//   $ gctrace trace.json --threads    # add the per-thread table
//   $ gctrace trace.json --events=20  # also dump the first 20 raw events
//   $ gctrace trace.json --cycles=3..7  # restrict to cycles 3-7 inclusive
//
//===----------------------------------------------------------------------===//

#include "observe/TraceJson.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

using namespace hcsgc;

namespace {

/// Everything the summary reports about one GC cycle.
struct CycleSummary {
  double PauseUs[3] = {0, 0, 0}; ///< STW1 / STW2 / STW3.
  double MarkUs = 0;
  double RelocUs = 0;
  uint64_t EcConsidered = 0;
  uint64_t EcSelected = 0;
  uint64_t EcReclaimed = 0;
  uint64_t HotFlags = 0;
  uint64_t HotFlagBytes = 0;
  uint64_t RelocMut = 0, RelocGc = 0;
  uint64_t RelocMutBytes = 0, RelocGcBytes = 0;
};

int pauseIndex(GcPhase P) {
  switch (P) {
  case GcPhase::Stw1:
    return 0;
  case GcPhase::Stw2:
    return 1;
  case GcPhase::Stw3:
    return 2;
  default:
    return -1;
  }
}

void printEvent(const TraceEvent &E) {
  std::printf("  %12.3fus tid=%-3u cycle=%-4" PRIu64 " %-18s",
              static_cast<double>(E.TimeNs) / 1000.0,
              static_cast<unsigned>(E.Tid), E.Cycle,
              traceEventKindName(E.Kind));
  switch (E.Kind) {
  case TraceEventKind::PhaseBegin:
  case TraceEventKind::PhaseEnd:
  case TraceEventKind::PauseBegin:
  case TraceEventKind::PauseEnd:
    std::printf(" %s", gcPhaseName(static_cast<GcPhase>(E.A)));
    break;
  case TraceEventKind::EcPageConsidered:
  case TraceEventKind::EcPageSelected:
    std::printf(" page=0x%" PRIx64 " live=%" PRIu64 " hot=%" PRIu64
                " wlb=%.1f",
                E.A, E.B, E.C, traceDoubleFromBits(E.D));
    break;
  case TraceEventKind::EcPageReclaimed:
    std::printf(" page=0x%" PRIx64 " bytes=%" PRIu64, E.A, E.B);
    break;
  case TraceEventKind::HotFlag:
    std::printf(" addr=0x%" PRIx64 " bytes=%" PRIu64, E.A, E.B);
    break;
  case TraceEventKind::Relocation:
    std::printf(" 0x%" PRIx64 " -> 0x%" PRIx64 " bytes=%" PRIu64
                " by=%s",
                E.A, E.B, E.C, E.GcThread ? "gc" : "mutator");
    break;
  default:
    break;
  }
  std::printf("\n");
}

} // namespace

int main(int Argc, char **Argv) {
  const char *Path = nullptr;
  bool ShowThreads = false;
  long DumpEvents = 0;
  uint64_t CycleLo = 0, CycleHi = UINT64_MAX;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--threads") == 0) {
      ShowThreads = true;
    } else if (std::strncmp(Argv[I], "--events=", 9) == 0) {
      DumpEvents = std::atol(Argv[I] + 9);
    } else if (std::strncmp(Argv[I], "--cycles=", 9) == 0) {
      // A..B (inclusive), or a single cycle number.
      const char *Spec = Argv[I] + 9;
      char *End = nullptr;
      CycleLo = std::strtoull(Spec, &End, 10);
      if (End == Spec) {
        std::fprintf(stderr, "bad --cycles range: %s\n", Spec);
        return 2;
      }
      if (End[0] == '.' && End[1] == '.') {
        const char *Hi = End + 2;
        CycleHi = std::strtoull(Hi, &End, 10);
        if (End == Hi) {
          std::fprintf(stderr, "bad --cycles range: %s\n", Spec);
          return 2;
        }
      } else {
        CycleHi = CycleLo;
      }
      if (CycleHi < CycleLo) {
        std::fprintf(stderr, "bad --cycles range: %s\n", Spec);
        return 2;
      }
    } else if (Argv[I][0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", Argv[I]);
      return 2;
    } else if (!Path) {
      Path = Argv[I];
    } else {
      std::fprintf(stderr, "extra argument: %s\n", Argv[I]);
      return 2;
    }
  }
  if (!Path) {
    std::fprintf(stderr, "usage: gctrace <trace.json> [--threads] "
                         "[--events=N] [--cycles=A..B]\n");
    return 2;
  }

  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "gctrace: cannot open %s\n", Path);
    return 1;
  }
  std::ostringstream SS;
  SS << In.rdbuf();

  CollectedTrace T;
  std::string Error;
  if (!readChromeTrace(SS.str(), T, Error)) {
    std::fprintf(stderr, "gctrace: %s: %s\n", Path, Error.c_str());
    return 1;
  }

  if (CycleLo != 0 || CycleHi != UINT64_MAX) {
    size_t Before = T.Events.size();
    T.Events.erase(std::remove_if(T.Events.begin(), T.Events.end(),
                                  [&](const TraceEvent &E) {
                                    return E.Cycle < CycleLo ||
                                           E.Cycle > CycleHi;
                                  }),
                   T.Events.end());
    std::printf("cycles %" PRIu64 "..%" PRIu64 ": %zu of %zu events\n",
                CycleLo, CycleHi, T.Events.size(), Before);
  }

  double SpanMs = 0;
  if (!T.Events.empty())
    SpanMs = static_cast<double>(T.Events.back().TimeNs -
                                 T.Events.front().TimeNs) /
             1e6;
  std::printf("%s: %zu events, %zu threads, %.3f ms span, %" PRIu64
              " dropped\n",
              Path, T.Events.size(), T.Threads.size(), SpanMs,
              T.DroppedTotal);

  if (ShowThreads) {
    std::printf("\n-- threads --\n");
    for (const TraceThreadInfo &Info : T.Threads)
      std::printf("  tid=%-3u %-8s %8" PRIu64 " events\n",
                  static_cast<unsigned>(Info.Tid),
                  Info.GcThread ? "gc" : "mutator", Info.Events);
  }

  // Fold the stream into per-cycle summaries. Begin/End pairs are matched
  // per (cycle, phase); the coordinator emits them single-threadedly, so
  // a single open-timestamp slot per pair suffices.
  std::map<uint64_t, CycleSummary> Cycles;
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> OpenBegin;
  for (const TraceEvent &E : T.Events) {
    CycleSummary &C = Cycles[E.Cycle];
    switch (E.Kind) {
    case TraceEventKind::PauseBegin:
    case TraceEventKind::PhaseBegin:
      OpenBegin[{E.Cycle, E.A}] = E.TimeNs;
      break;
    case TraceEventKind::PauseEnd:
    case TraceEventKind::PhaseEnd: {
      auto It = OpenBegin.find({E.Cycle, E.A});
      if (It == OpenBegin.end())
        break;
      double Us =
          static_cast<double>(E.TimeNs - It->second) / 1000.0;
      OpenBegin.erase(It);
      GcPhase P = static_cast<GcPhase>(E.A);
      if (int Idx = pauseIndex(P); Idx >= 0)
        C.PauseUs[Idx] += Us;
      else if (P == GcPhase::Mark)
        C.MarkUs += Us;
      else if (P == GcPhase::Relocate)
        C.RelocUs += Us;
      break;
    }
    case TraceEventKind::EcPageConsidered:
      ++C.EcConsidered;
      break;
    case TraceEventKind::EcPageSelected:
      ++C.EcSelected;
      break;
    case TraceEventKind::EcPageReclaimed:
      ++C.EcReclaimed;
      break;
    case TraceEventKind::HotFlag:
      ++C.HotFlags;
      C.HotFlagBytes += E.B;
      break;
    case TraceEventKind::Relocation:
      if (E.GcThread) {
        ++C.RelocGc;
        C.RelocGcBytes += E.C;
      } else {
        ++C.RelocMut;
        C.RelocMutBytes += E.C;
      }
      break;
    default:
      break;
    }
  }
  // Cycle 0 only exists for events recorded before the first STW1
  // (relocations of a drained EC carry their EC's cycle); drop the
  // artificial empty entry if nothing landed there.
  if (!Cycles.empty() && Cycles.begin()->first == 0) {
    const CycleSummary &C0 = Cycles.begin()->second;
    if (C0.RelocMut + C0.RelocGc + C0.HotFlags + C0.EcConsidered == 0)
      Cycles.erase(Cycles.begin());
  }

  std::printf("\n-- per-cycle --\n");
  std::printf("%5s %9s %9s %9s %9s %9s | %5s %5s %5s | %8s | %9s %9s\n",
              "cycle", "stw1(us)", "stw2(us)", "stw3(us)", "mark(us)",
              "reloc(us)", "cons", "sel", "recl", "hotflag", "mutKB",
              "gcKB");
  for (const auto &[Cycle, C] : Cycles)
    std::printf("%5" PRIu64
                " %9.1f %9.1f %9.1f %9.1f %9.1f | %5" PRIu64 " %5" PRIu64
                " %5" PRIu64 " | %8" PRIu64 " | %9.1f %9.1f\n",
                Cycle, C.PauseUs[0], C.PauseUs[1], C.PauseUs[2], C.MarkUs,
                C.RelocUs, C.EcConsidered, C.EcSelected, C.EcReclaimed,
                C.HotFlags,
                static_cast<double>(C.RelocMutBytes) / 1024.0,
                static_cast<double>(C.RelocGcBytes) / 1024.0);

  uint64_t RelocMut = 0, RelocGc = 0, MutBytes = 0, GcBytes = 0,
           HotFlags = 0;
  for (const auto &[Cycle, C] : Cycles) {
    RelocMut += C.RelocMut;
    RelocGc += C.RelocGc;
    MutBytes += C.RelocMutBytes;
    GcBytes += C.RelocGcBytes;
    HotFlags += C.HotFlags;
  }
  std::printf("\ntotals: %zu cycles, %" PRIu64 " hot flags, relocations "
              "mutator=%" PRIu64 " (%.1f KB) gc=%" PRIu64 " (%.1f KB)\n",
              Cycles.size(), HotFlags, RelocMut,
              static_cast<double>(MutBytes) / 1024.0, RelocGc,
              static_cast<double>(GcBytes) / 1024.0);

  if (DumpEvents > 0) {
    std::printf("\n-- first %ld events --\n", DumpEvents);
    long N = 0;
    for (const TraceEvent &E : T.Events) {
      if (N++ >= DumpEvents)
        break;
      printEvent(E);
    }
  }
  return 0;
}
