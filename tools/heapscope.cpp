//===- tools/heapscope.cpp - Heap snapshot log explorer -----------------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// Reads a JSONL heap-snapshot log (GcConfig::SnapshotLogPath, the
// harness's --snapshot-log flag, or Runtime::dumpSnapshots) and renders
// the locality observatory offline:
//
//   $ heapscope snap.jsonl                    # per-capture summary table
//   $ heapscope snap.jsonl --map              # ASCII heat strip per capture
//   $ heapscope snap.jsonl --map=7            #   ... cycle 7 only
//   $ heapscope snap.jsonl --trends           # locality trend lines
//   $ heapscope snap.jsonl --sites            # top allocation sites
//   $ heapscope snap.jsonl --sites=5          #   ... top 5 only
//   $ heapscope snap.jsonl --audit            # EC decision audit dump
//   $ heapscope snap.jsonl --audit=7          #   ... cycle 7 only
//   $ heapscope snap.jsonl --replay           # re-run EC selection from the
//                                             # audit; exit 1 on mismatch
//   $ heapscope snap.jsonl --diff=other.jsonl # compare two runs per cycle
//   $ heapscope snap.jsonl --cycles=3..7      # restrict any mode to 3-7
//
//===----------------------------------------------------------------------===//

#include "observe/HeapSnapshot.h"
#include "observe/SnapshotLog.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace hcsgc;

namespace {

bool loadLog(const char *Path, std::vector<CycleSnapshot> &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "heapscope: cannot open %s\n", Path);
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  std::string Error;
  if (!readSnapshotLog(SS.str(), Out, Error)) {
    std::fprintf(stderr, "heapscope: %s: %s\n", Path, Error.c_str());
    return false;
  }
  return true;
}

uint64_t sumLive(const CycleSnapshot &S) {
  uint64_t N = 0;
  for (const PageRecord &P : S.Pages)
    N += P.LiveBytes;
  return N;
}

uint64_t sumHot(const CycleSnapshot &S) {
  uint64_t N = 0;
  for (const PageRecord &P : S.Pages)
    N += P.HotBytes;
  return N;
}

uint64_t sumUsed(const CycleSnapshot &S) {
  uint64_t N = 0;
  for (const PageRecord &P : S.Pages)
    N += P.UsedBytes;
  return N;
}

size_t countSelected(const CycleSnapshot &S) {
  size_t N = 0;
  for (const PageRecord &P : S.Pages)
    N += P.EcSelected;
  return N;
}

void printSummary(const std::vector<CycleSnapshot> &Log) {
  std::printf("%5s %-10s %6s %10s %10s %10s %5s %8s %6s\n", "cycle",
              "point", "pages", "used(KB)", "live(KB)", "hot(KB)", "ec",
              "cc", "audit");
  for (const CycleSnapshot &S : Log)
    std::printf("%5" PRIu64 " %-10s %6zu %10.1f %10.1f %10.1f %5zu "
                "%8.3f %6s\n",
                S.Cycle, snapshotPointName(S.Point), S.Pages.size(),
                static_cast<double>(sumUsed(S)) / 1024.0,
                static_cast<double>(sumLive(S)) / 1024.0,
                static_cast<double>(sumHot(S)) / 1024.0, countSelected(S),
                S.ColdConfidence, S.HasAudit ? "yes" : "");
}

/// One shade character per page, by hot fraction of live bytes.
char shadeOf(const PageRecord &P) {
  static const char Shades[] = " .:-=+*#%@";
  if (P.LiveBytes == 0)
    return ' ';
  double Frac = static_cast<double>(P.HotBytes) /
                static_cast<double>(P.LiveBytes);
  int Idx = static_cast<int>(Frac * 9.0);
  return Shades[std::min(9, std::max(0, Idx))];
}

void printMap(const CycleSnapshot &S) {
  std::printf("cycle %" PRIu64 " %s: %zu pages (hot-fraction shade "
              "' .:-=+*#%%@', '^' = EC-selected)\n",
              S.Cycle, snapshotPointName(S.Point), S.Pages.size());
  constexpr size_t Width = 64;
  for (size_t Row = 0; Row < S.Pages.size(); Row += Width) {
    size_t End = std::min(S.Pages.size(), Row + Width);
    std::printf("  [%4zu] |", Row);
    for (size_t I = Row; I < End; ++I)
      std::fputc(shadeOf(S.Pages[I]), stdout);
    std::printf("|\n         |");
    for (size_t I = Row; I < End; ++I)
      std::fputc(S.Pages[I].EcSelected ? '^' : ' ', stdout);
    std::printf("|\n");
  }
}

void printTrends(const std::vector<CycleSnapshot> &Log) {
  // One line per AfterEc capture: how much of the live set is hot, how
  // fragmented the surviving (unselected) pages are, and what fraction of
  // pages entered the relocation set — the observable the paper's
  // locality argument is about (hot objects packed onto few pages).
  // Temperature columns (zero without TEMPERATURE): the byte fraction of
  // the live set at each 2-bit tier, plus resident bytes on cold-tier
  // pages — the reclaimable-RSS figure the cold backend reports.
  // The pret% column (zero without SITEPROFILING) is the cumulative
  // share of tagged allocation bytes placed through the pretenure TLAB.
  std::printf("%5s %12s %12s %12s %12s %8s %7s %7s %7s %7s %10s %6s\n",
              "cycle", "hot/live", "surv hot/lv", "frag", "ec pages%",
              "pages", "t0%", "t1%", "t2%", "t3%", "cold(KB)", "pret%");
  for (const CycleSnapshot &S : Log) {
    if (S.Point != SnapshotPoint::AfterEc)
      continue;
    uint64_t Live = 0, Hot = 0, SurvLive = 0, SurvHot = 0, Used = 0;
    uint64_t Temp[SnapTempTiers] = {0, 0, 0, 0};
    uint64_t ColdResident = 0;
    size_t Selected = 0;
    for (const PageRecord &P : S.Pages) {
      Live += P.LiveBytes;
      Hot += P.HotBytes;
      Used += P.UsedBytes;
      for (unsigned T = 0; T < SnapTempTiers; ++T)
        Temp[T] += P.TempBytes[T];
      if (P.Tier == static_cast<uint8_t>(SnapPageTier::Cold))
        ColdResident += P.UsedBytes;
      if (P.EcSelected) {
        ++Selected;
      } else {
        SurvLive += P.LiveBytes;
        SurvHot += P.HotBytes;
      }
    }
    double HotFrac = Live ? static_cast<double>(Hot) / Live : 0.0;
    double SurvFrac =
        SurvLive ? static_cast<double>(SurvHot) / SurvLive : 0.0;
    // Fragmentation: allocated-but-dead fraction across active pages.
    double Frag = Used ? 1.0 - static_cast<double>(Live) / Used : 0.0;
    double EcPct =
        S.Pages.empty()
            ? 0.0
            : 100.0 * static_cast<double>(Selected) / S.Pages.size();
    uint64_t TempTotal = Temp[0] + Temp[1] + Temp[2] + Temp[3];
    auto TempPct = [&](unsigned T) {
      return TempTotal ? 100.0 * static_cast<double>(Temp[T]) /
                             static_cast<double>(TempTotal)
                       : 0.0;
    };
    uint64_t SiteAlloc = 0, SitePret = 0;
    for (const SiteRecord &R : S.Sites) {
      SiteAlloc += R.AllocatedBytes;
      SitePret += R.PretenuredBytes;
    }
    double PretPct = SiteAlloc ? 100.0 * static_cast<double>(SitePret) /
                                     static_cast<double>(SiteAlloc)
                               : 0.0;
    std::printf("%5" PRIu64 " %12.3f %12.3f %12.3f %11.1f%% %8zu "
                "%6.1f%% %6.1f%% %6.1f%% %6.1f%% %10.1f %5.1f%%\n",
                S.Cycle, HotFrac, SurvFrac, Frag, EcPct, S.Pages.size(),
                TempPct(0), TempPct(1), TempPct(2), TempPct(3),
                static_cast<double>(ColdResident) / 1024.0, PretPct);
  }
}

void printSites(const std::vector<CycleSnapshot> &Log, long TopN) {
  // Site rows are cumulative, so the latest capture carrying them is the
  // whole story; rank by allocation volume.
  const CycleSnapshot *Last = nullptr;
  for (const CycleSnapshot &S : Log)
    if (!S.Sites.empty())
      Last = &S;
  if (!Last) {
    std::printf("no site records in this log (SITEPROFILING off?)\n");
    return;
  }
  std::vector<SiteRecord> Sites = Last->Sites;
  std::sort(Sites.begin(), Sites.end(),
            [](const SiteRecord &A, const SiteRecord &B) {
              return A.AllocatedBytes > B.AllocatedBytes;
            });
  if (TopN > 0 && Sites.size() > static_cast<size_t>(TopN))
    Sites.resize(static_cast<size_t>(TopN));
  std::printf("allocation sites as of cycle %" PRIu64 " (%s), by "
              "allocated bytes:\n",
              Last->Cycle, snapshotPointName(Last->Point));
  std::printf("%4s %-20s %10s %10s %10s %10s %10s %7s %-5s\n", "id",
              "site", "alloc(KB)", "surv(KB)", "hot(KB)", "reloc(KB)",
              "pret(KB)", "ewma", "route");
  for (const SiteRecord &R : Sites)
    std::printf("%4" PRIu64 " %-20s %10.1f %10.1f %10.1f %10.1f %10.1f "
                "%7.3f %-5s\n",
                R.SiteIdNum, R.Name.c_str(),
                static_cast<double>(R.AllocatedBytes) / 1024.0,
                static_cast<double>(R.SurvivedBytes) / 1024.0,
                static_cast<double>(R.HotBytes) / 1024.0,
                static_cast<double>(R.RelocatedBytes) / 1024.0,
                static_cast<double>(R.PretenuredBytes) / 1024.0,
                R.HotEwma, snapSiteRouteName(R.Route));
}

void printAudit(const CycleSnapshot &S) {
  const EcAudit &A = S.Audit;
  std::printf("cycle %" PRIu64 " audit: cc=%.3f threshold=%.3f "
              "budget_small=%.1f budget_medium=%.1f required_free=%.1f "
              "hotness=%d relocate_all=%d temperature=%d\n",
              A.Cycle, A.ColdConfidence, A.EvacLiveThreshold,
              A.BudgetSmall, A.BudgetMedium, A.RequiredFree,
              static_cast<int>(A.Hotness),
              static_cast<int>(A.RelocateAll),
              static_cast<int>(A.Temperature));
  if (A.Temperature) {
    std::printf("  %-14s %6s %10s %10s %12s %-6s %-18s %8s %8s %8s "
                "%8s\n",
                "page", "size", "live", "hot", "weight", "class",
                "verdict", "t0", "t1", "t2", "t3");
    for (const EcAuditEntry &E : A.Entries)
      std::printf("  0x%-12" PRIx64 " %6" PRIu64 " %10" PRIu64
                  " %10" PRIu64 " %12.1f %-6s %-18s %8" PRIu64
                  " %8" PRIu64 " %8" PRIu64 " %8" PRIu64 "\n",
                  E.PageBegin, E.PageSize, E.LiveBytes, E.HotBytes,
                  E.Weight, snapSizeClassName(E.SizeClass),
                  ecVerdictName(E.Verdict), E.TempBytes[0],
                  E.TempBytes[1], E.TempBytes[2], E.TempBytes[3]);
    return;
  }
  std::printf("  %-14s %6s %10s %10s %12s %-6s %-18s\n", "page", "size",
              "live", "hot", "weight", "class", "verdict");
  for (const EcAuditEntry &E : A.Entries)
    std::printf("  0x%-12" PRIx64 " %6" PRIu64 " %10" PRIu64
                " %10" PRIu64 " %12.1f %-6s %-18s\n",
                E.PageBegin, E.PageSize, E.LiveBytes, E.HotBytes,
                E.Weight, snapSizeClassName(E.SizeClass),
                ecVerdictName(E.Verdict));
}

/// Re-runs EC selection from every audit and compares with what the live
/// selector recorded. \returns the number of mismatching captures.
int replayAll(const std::vector<CycleSnapshot> &Log) {
  int Mismatches = 0;
  size_t Audited = 0;
  for (const CycleSnapshot &S : Log) {
    if (!S.HasAudit)
      continue;
    ++Audited;
    std::vector<uint64_t> Replayed = replayEcSelection(S.Audit);
    std::vector<uint64_t> Recorded = auditSelectedPages(S.Audit);
    if (Replayed == Recorded) {
      std::printf("cycle %" PRIu64 ": replay OK (%zu selected)\n",
                  S.Cycle, Recorded.size());
      continue;
    }
    ++Mismatches;
    std::printf("cycle %" PRIu64 ": REPLAY MISMATCH (replayed %zu, "
                "recorded %zu)\n",
                S.Cycle, Replayed.size(), Recorded.size());
    for (uint64_t B : Replayed)
      if (!std::binary_search(Recorded.begin(), Recorded.end(), B))
        std::printf("  replay selected 0x%" PRIx64
                    " but the collector did not\n",
                    B);
    for (uint64_t B : Recorded)
      if (!std::binary_search(Replayed.begin(), Replayed.end(), B))
        std::printf("  collector selected 0x%" PRIx64
                    " but the replay did not\n",
                    B);
  }
  std::printf("replay: %zu audited captures, %d mismatches\n", Audited,
              Mismatches);
  return Mismatches;
}

void printDiff(const std::vector<CycleSnapshot> &A,
               const std::vector<CycleSnapshot> &B) {
  // Index AfterEc captures by cycle on both sides; compare where both
  // runs have the cycle and note one-sided cycles.
  auto index = [](const std::vector<CycleSnapshot> &Log) {
    std::map<uint64_t, const CycleSnapshot *> M;
    for (const CycleSnapshot &S : Log)
      if (S.Point == SnapshotPoint::AfterEc)
        M[S.Cycle] = &S;
    return M;
  };
  auto MA = index(A), MB = index(B);
  std::printf("%5s %10s %10s | %10s %10s | %7s %7s\n", "cycle",
              "liveA(KB)", "liveB(KB)", "hotA(KB)", "hotB(KB)", "ecA",
              "ecB");
  for (const auto &[Cycle, SA] : MA) {
    auto It = MB.find(Cycle);
    if (It == MB.end()) {
      std::printf("%5" PRIu64 "  (only in first run)\n", Cycle);
      continue;
    }
    const CycleSnapshot *SB = It->second;
    std::printf("%5" PRIu64 " %10.1f %10.1f | %10.1f %10.1f | %7zu "
                "%7zu\n",
                Cycle, static_cast<double>(sumLive(*SA)) / 1024.0,
                static_cast<double>(sumLive(*SB)) / 1024.0,
                static_cast<double>(sumHot(*SA)) / 1024.0,
                static_cast<double>(sumHot(*SB)) / 1024.0,
                countSelected(*SA), countSelected(*SB));
  }
  for (const auto &[Cycle, SB] : MB)
    if (!MA.count(Cycle))
      std::printf("%5" PRIu64 "  (only in second run)\n", Cycle);
}

} // namespace

int main(int Argc, char **Argv) {
  const char *Path = nullptr;
  const char *DiffPath = nullptr;
  bool Summary = false, Map = false, Trends = false, Audit = false,
       Replay = false, Sites = false;
  long MapCycle = -1, AuditCycle = -1, SitesTop = 20;
  uint64_t CycleLo = 0, CycleHi = UINT64_MAX;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--summary") == 0) {
      Summary = true;
    } else if (std::strcmp(Argv[I], "--map") == 0) {
      Map = true;
    } else if (std::strncmp(Argv[I], "--map=", 6) == 0) {
      Map = true;
      MapCycle = std::atol(Argv[I] + 6);
    } else if (std::strcmp(Argv[I], "--trends") == 0) {
      Trends = true;
    } else if (std::strcmp(Argv[I], "--sites") == 0) {
      Sites = true;
    } else if (std::strncmp(Argv[I], "--sites=", 8) == 0) {
      Sites = true;
      SitesTop = std::atol(Argv[I] + 8);
    } else if (std::strcmp(Argv[I], "--audit") == 0) {
      Audit = true;
    } else if (std::strncmp(Argv[I], "--audit=", 8) == 0) {
      Audit = true;
      AuditCycle = std::atol(Argv[I] + 8);
    } else if (std::strcmp(Argv[I], "--replay") == 0) {
      Replay = true;
    } else if (std::strncmp(Argv[I], "--diff=", 7) == 0) {
      DiffPath = Argv[I] + 7;
    } else if (std::strncmp(Argv[I], "--cycles=", 9) == 0) {
      // parseCycleRange rejects trailing garbage ("3..7junk") and
      // inverted ranges; "--cycles=N" means N..N.
      if (!parseCycleRange(Argv[I] + 9, CycleLo, CycleHi)) {
        std::fprintf(stderr, "bad --cycles range: %s\n", Argv[I] + 9);
        return 2;
      }
    } else if (Argv[I][0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", Argv[I]);
      return 2;
    } else if (!Path) {
      Path = Argv[I];
    } else {
      std::fprintf(stderr, "extra argument: %s\n", Argv[I]);
      return 2;
    }
  }
  if (!Path) {
    std::fprintf(
        stderr,
        "usage: heapscope <snap.jsonl> [--summary] [--map[=CYCLE]] "
        "[--trends] [--sites[=N]] [--audit[=CYCLE]] [--replay] "
        "[--diff=other.jsonl] [--cycles=A..B]\n");
    return 2;
  }
  if (!Summary && !Map && !Trends && !Sites && !Audit && !Replay &&
      !DiffPath)
    Summary = true;

  std::vector<CycleSnapshot> Log;
  if (!loadLog(Path, Log))
    return 1;
  if (CycleLo != 0 || CycleHi != UINT64_MAX)
    Log.erase(std::remove_if(Log.begin(), Log.end(),
                             [&](const CycleSnapshot &S) {
                               return S.Cycle < CycleLo ||
                                      S.Cycle > CycleHi;
                             }),
              Log.end());
  std::printf("%s: %zu captures\n", Path, Log.size());

  if (Summary)
    printSummary(Log);
  if (Map)
    for (const CycleSnapshot &S : Log)
      if (MapCycle < 0 || S.Cycle == static_cast<uint64_t>(MapCycle))
        printMap(S);
  if (Trends)
    printTrends(Log);
  if (Sites)
    printSites(Log, SitesTop);
  if (Audit)
    for (const CycleSnapshot &S : Log)
      if (S.HasAudit &&
          (AuditCycle < 0 || S.Cycle == static_cast<uint64_t>(AuditCycle)))
        printAudit(S);
  if (DiffPath) {
    std::vector<CycleSnapshot> Other;
    if (!loadLog(DiffPath, Other))
      return 1;
    if (CycleLo != 0 || CycleHi != UINT64_MAX)
      Other.erase(std::remove_if(Other.begin(), Other.end(),
                                 [&](const CycleSnapshot &S) {
                                   return S.Cycle < CycleLo ||
                                          S.Cycle > CycleHi;
                                 }),
                  Other.end());
    printDiff(Log, Other);
  }
  if (Replay)
    return replayAll(Log) == 0 ? 0 : 1;
  return 0;
}
