//===- tools/heapstress.cpp - Randomized GC stress driver -----------------===//
//
// Part of the HCSGC reproduction of "Improving Program Locality in the GC
// using Hotness" (PLDI 2020). Distributed under the MIT license.
//
// A long-running randomized stress driver with periodic heap
// verification: N mutator threads hammer a shared object table with
// allocation, linking, replacement and reads while GC cycles run under a
// chosen Table 2 configuration. Any invariant violation aborts with a
// verifier report. Use it to soak-test collector changes:
//
//   $ ./heapstress --seconds=30 --mutators=4 --config=18 --heap-mb=32
//
//===----------------------------------------------------------------------===//

#include "gc/Verifier.h"
#include "harness/Config.h"
#include "runtime/Runtime.h"
#include "support/ArgParse.h"
#include "support/Random.h"
#include "support/Stopwatch.h"

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

using namespace hcsgc;

namespace {

struct StressStats {
  std::atomic<uint64_t> Ops{0};
  std::atomic<uint64_t> Allocs{0};
  std::atomic<bool> Corruption{false};
};

void mutatorLoop(Runtime &RT, ClassId Node, ClassId Garbage,
                 uint64_t Seed, double Seconds, StressStats &Stats) {
  auto M = RT.attachMutator();
  SplitMix64 Rng(Seed);
  Stopwatch SW;
  {
    constexpr uint32_t N = 4096;
    Root Table(*M), Tmp(*M), Other(*M), Junk(*M);
    M->allocateRefArray(Table, N);
    std::vector<int64_t> Expected(N, -1);

    while (SW.elapsedMs() < Seconds * 1000.0 &&
           !Stats.Corruption.load(std::memory_order_relaxed)) {
      uint32_t I = static_cast<uint32_t>(Rng.nextBelow(N));
      switch (Rng.nextBelow(8)) {
      case 0: { // fresh object with a known payload
        int64_t P = static_cast<int64_t>(Rng.next() >> 1);
        M->allocate(Tmp, Node);
        M->storeWord(Tmp, 0, P);
        M->storeElem(Table, I, Tmp);
        Expected[I] = P;
        Stats.Allocs.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case 1: // drop
        M->storeElemNull(Table, I);
        Expected[I] = -1;
        break;
      case 2: { // cross-link (references may dangle into garbage-free
                // space only if the collector is broken)
        uint32_t T = static_cast<uint32_t>(Rng.nextBelow(N));
        M->loadElem(Table, I, Tmp);
        M->loadElem(Table, T, Other);
        if (!Tmp.isNull())
          M->storeRef(Tmp, 0, Other);
        break;
      }
      case 3: // pure garbage churn
        M->allocate(Junk, Garbage);
        Stats.Allocs.fetch_add(1, std::memory_order_relaxed);
        break;
      default: { // read-validate
        M->loadElem(Table, I, Tmp);
        if (Expected[I] < 0) {
          if (!Tmp.isNull()) {
            std::fprintf(stderr, "CORRUPTION: slot %u should be null\n",
                         I);
            Stats.Corruption.store(true);
          }
        } else if (Tmp.isNull() || M->loadWord(Tmp, 0) != Expected[I]) {
          std::fprintf(stderr,
                       "CORRUPTION: slot %u payload mismatch\n", I);
          Stats.Corruption.store(true);
        }
        // Chase one link for extra barrier traffic.
        if (!Tmp.isNull()) {
          M->loadRef(Tmp, 0, Other);
          if (!Other.isNull())
            (void)M->loadWord(Other, 0);
        }
        break;
      }
      }
      Stats.Ops.fetch_add(1, std::memory_order_relaxed);
    }
  }
  M.reset();
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParse Args(Argc, Argv);
  double Seconds = Args.getDouble("seconds", 10.0);
  unsigned Mutators = static_cast<unsigned>(Args.getInt("mutators", 3));
  int ConfigId = static_cast<int>(Args.getInt("config", 18));
  size_t HeapMb = static_cast<size_t>(Args.getInt("heap-mb", 32));

  GcConfig Cfg;
  Cfg.Geometry.SmallPageSize = 128 * 1024;
  Cfg.Geometry.MediumPageSize = 2 * 1024 * 1024;
  Cfg.MaxHeapBytes = HeapMb << 20;
  Cfg.TriggerFraction = 0.5;
  Cfg.TriggerHysteresisFraction = 0.02;
  Cfg.GcWorkers = static_cast<unsigned>(Args.getInt("workers", 2));
  Cfg = applyKnobs(Cfg, table2Config(ConfigId));

  Runtime RT(Cfg);
  ClassId Node = RT.registerClass("stress.Node", 2, 16);
  ClassId Garbage = RT.registerClass("stress.Garbage", 0, 120);

  std::printf("heapstress: %u mutators, %.1fs, config %d (%s), heap "
              "%zu MB\n",
              Mutators, Seconds, ConfigId,
              describeConfig(table2Config(ConfigId)).c_str(), HeapMb);

  StressStats Stats;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < Mutators; ++T)
    Threads.emplace_back([&, T] {
      mutatorLoop(RT, Node, Garbage, 0x57e55 + T, Seconds, Stats);
    });
  for (auto &T : Threads)
    T.join();

  // Final invariant sweep over whatever survived.
  RT.driver().waitIdle();
  auto M = RT.attachMutator();
  M.reset();
  VerifyResult VR = RT.verifyHeap();

  std::printf("ops=%llu allocs=%llu gc-cycles=%llu verified-objects=%llu "
              "stale-resolved=%llu\n",
              (unsigned long long)Stats.Ops.load(),
              (unsigned long long)Stats.Allocs.load(),
              (unsigned long long)RT.gcStats().cycleCount(),
              (unsigned long long)VR.ObjectsVisited,
              (unsigned long long)VR.StaleRefsResolved);
  if (Stats.Corruption.load() || !VR.ok()) {
    for (const std::string &E : VR.Errors)
      std::fprintf(stderr, "verifier: %s\n", E.c_str());
    std::printf("RESULT: FAILED\n");
    return 1;
  }
  std::printf("RESULT: OK\n");
  return 0;
}
